(** Hereditary languages — properties closed under (connected) induced
    subgraphs.

    They matter to the paper twice: Fraigniaud-Halldorsson-Korman
    proved [LD* = LD] {e for hereditary languages} (the conjecture the
    paper refutes in general), and the randomisation threshold of
    Fraigniaud-Korman-Peleg pertains to hereditary languages — the
    paper's Corollary 1 shows it fails for arbitrary ones. This module
    provides the (sampled) closure test that places the witness
    properties {e outside} the hereditary class, closing the loop with
    those statements. *)

open Locald_graph

type witness = {
  subgraph_nodes : int array;  (** nodes of the violating induced subgraph *)
}

val connected_induced_counterexample :
  rng:Random.State.t ->
  samples:int ->
  'a Property.t ->
  'a Labelled.t ->
  witness option
(** Search for a connected induced subgraph of a {e yes}-instance that
    leaves the property — a witness of non-hereditariness. Subgraphs
    are sampled as BFS-grown connected chunks of random sizes; for
    instances with at most 12 nodes every connected subset is tried.
    [None] means no violation was found (consistent with the property
    being hereditary). *)

val looks_hereditary_on :
  rng:Random.State.t ->
  samples:int ->
  'a Property.t ->
  'a Labelled.t list ->
  bool
(** No counterexample found on any of the given yes-instances. *)
