(** Locally checkable labellings (LCLs) — the Naor-Stockmeyer frame
    ("What can be computed locally?") that the paper's title answers
    for decision.

    An LCL is a property {e defined} as the conjunction of a local
    validity predicate over all nodes. Such properties are the
    prototypical members of LD*: the canonical decider simply runs the
    validity predicate at every node, is Id-oblivious by construction
    and decides the property exactly (by definition — {!decides}
    checks the plumbing). The paper's separations show this easy world
    is not all of LD. *)

open Locald_graph
open Locald_local

type 'a spec = {
  lcl_name : string;
  lcl_radius : int;
  valid : 'a View.t -> bool;  (** identifier-free local validity *)
}

val property : 'a spec -> 'a Property.t
(** Global membership: every node's view is valid. *)

val decider : 'a spec -> ('a, bool) Algorithm.oblivious
(** The canonical Id-oblivious decider. *)

val decides :
  'a spec -> 'a Labelled.t list -> bool
(** The decider's verdict equals membership on each instance (sanity:
    true by construction, exercised in tests). *)

(** {1 Stock LCLs} *)

val proper_colouring : k:int -> int spec

val maximal_independent_set : int spec
(** Labels in {0,1}; 1-nodes independent, 0-nodes dominated. *)

val dominating_set : int spec
(** Every node is, or neighbours, a 1-node. *)

val maximal_matching : int option spec
(** A node's label optionally names the {e position} (in its sorted
    adjacency list) of its matched edge; validity: named partners point
    back, and two unmatched neighbours may not coexist. *)

val sinkless_orientation : int spec
(** Each node names one incident edge position as outgoing; validity
    at radius 1: the position is in range and, on nodes of degree
    >= 2, the chosen out-neighbour does not point straight back (no
    2-cycles pretending to be progress). The classical LCL separating
    randomised from deterministic round complexity. *)

(** {1 Construction helpers (for examples and tests)} *)

val greedy_mis : 'a Labelled.t -> int array
val greedy_matching : 'a Labelled.t -> int option array
