type t =
  | Accept
  | Reject of int list

let of_outputs outputs =
  let nos = ref [] in
  Array.iteri (fun v yes -> if not yes then nos := v :: !nos) outputs;
  match List.rev !nos with [] -> Accept | nos -> Reject nos

let accepts = function Accept -> true | Reject _ -> false
let rejects t = not (accepts t)

let pp ppf = function
  | Accept -> Format.fprintf ppf "accept"
  | Reject nos ->
      Format.fprintf ppf "reject@%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (match nos with _ :: _ :: _ :: _ -> [ List.hd nos ] | l -> l)
