open Locald_graph

type 'a t = {
  name : string;
  mem : 'a Labelled.t -> bool;
}

let make ~name mem = { name; mem }

let random_permutation rng n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let check_invariance ~rng ~trials p lg =
  let reference = p.mem lg in
  let n = Labelled.order lg in
  let rec go k =
    if k >= trials then true
    else
      let perm = random_permutation rng n in
      if p.mem (Labelled.relabel_nodes lg perm) <> reference then false
      else go (k + 1)
  in
  if n = 0 then true else go 0

let proper_colouring ~k =
  make ~name:(Printf.sprintf "proper-%d-colouring" k) (fun lg ->
      let g = Labelled.graph lg in
      Graph.fold_vertices
        (fun v acc ->
          let c = Labelled.label lg v in
          acc && c >= 0 && c < k
          && Array.for_all (fun u -> Labelled.label lg u <> c) (Graph.neighbours g v))
        g true)

let maximal_independent_set =
  make ~name:"maximal-independent-set" (fun lg ->
      let g = Labelled.graph lg in
      let in_set v = Labelled.label lg v = 1 in
      Graph.fold_vertices
        (fun v acc ->
          let independent =
            (not (in_set v))
            || Array.for_all (fun u -> not (in_set u)) (Graph.neighbours g v)
          in
          let dominated =
            in_set v || Array.exists in_set (Graph.neighbours g v)
          in
          acc && independent && dominated)
        g true)

let all_equal =
  make ~name:"all-labels-equal" (fun lg ->
      let labels = Labelled.labels lg in
      Array.length labels = 0 || Array.for_all (fun x -> x = labels.(0)) labels)
