(** The Id-oblivious simulation [A*] (Section 1, "Id-oblivious
    simulation").

    [A*] outputs no on a view exactly when {e some} local identifier
    assignment makes [A] output no. Under [(not B, not C)] the
    existential search ranges over all of [N] and [A*] decides the same
    property as [A]; our executable version bounds the search by an
    explicit budget. The budget is itself part of the experiment: under
    [(B)] no budget can be right (identifiers leak [n], and the search
    cannot know [n]) — that failure is exactly the Section 2
    separation, and {!Locald_core} demonstrates it. *)

open Locald_local

type budget =
  | Exhaustive of int
      (** try every injective assignment of the view's nodes into
          [0 .. b-1] *)
  | Sampled of { bound : int; trials : int; seed : int }
      (** random injective assignments below [bound] *)

val a_star :
  budget:budget -> ('a, bool) Algorithm.t -> ('a, bool) Algorithm.oblivious
(** The simulated Id-oblivious algorithm: yes iff every assignment in
    the budget keeps [A] saying yes. *)

val assignments_of_budget : budget -> k:int -> Ids.t Seq.t
(** The assignment stream the simulation searches for a view of [k]
    nodes (exposed for tests). *)
