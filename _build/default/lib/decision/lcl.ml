open Locald_graph
open Locald_local

type 'a spec = {
  lcl_name : string;
  lcl_radius : int;
  valid : 'a View.t -> bool;
}

let property spec =
  Property.make ~name:spec.lcl_name (fun lg ->
      let n = Labelled.order lg in
      let rec go v =
        v >= n
        || (spec.valid (View.extract lg ~center:v ~radius:spec.lcl_radius)
           && go (v + 1))
      in
      go 0)

let decider spec =
  Algorithm.make_oblivious ~name:(spec.lcl_name ^ "-decider")
    ~radius:spec.lcl_radius spec.valid

let decides spec instances =
  let p = property spec in
  let d = decider spec in
  List.for_all
    (fun lg ->
      Verdict.accepts (Verdict.of_outputs (Runner.run_oblivious d lg))
      = p.Property.mem lg)
    instances

(* ------------------------------------------------------------------ *)
(* Stock LCLs                                                          *)
(* ------------------------------------------------------------------ *)

let proper_colouring ~k =
  {
    lcl_name = Printf.sprintf "lcl-%d-colouring" k;
    lcl_radius = 1;
    valid =
      (fun view ->
        let c = View.center_label view in
        c >= 0 && c < k
        && Array.for_all
             (fun u -> view.View.labels.(u) <> c)
             (Graph.neighbours view.View.graph view.View.center));
  }

let maximal_independent_set =
  {
    lcl_name = "lcl-mis";
    lcl_radius = 1;
    valid =
      (fun view ->
        let v = view.View.center in
        let in_set u = view.View.labels.(u) = 1 in
        let nbrs = Graph.neighbours view.View.graph v in
        let label = view.View.labels.(v) in
        (label = 0 || label = 1)
        && ((not (in_set v)) || Array.for_all (fun u -> not (in_set u)) nbrs)
        && (in_set v || Array.exists in_set nbrs));
  }

let dominating_set =
  {
    lcl_name = "lcl-dominating-set";
    lcl_radius = 1;
    valid =
      (fun view ->
        let v = view.View.center in
        let in_set u = view.View.labels.(u) = 1 in
        in_set v || Array.exists in_set (Graph.neighbours view.View.graph v));
  }

(* The matched partner named by position within the sorted adjacency
   list; radius 2 so that the partner's full (order-preserved)
   adjacency is inside the view. *)
let partner_of view u =
  let nbrs = Graph.neighbours view.View.graph u in
  match view.View.labels.(u) with
  | Some k when k >= 0 && k < Array.length nbrs -> Some nbrs.(k)
  | Some _ | None -> None

let maximal_matching =
  {
    lcl_name = "lcl-maximal-matching";
    lcl_radius = 2;
    valid =
      (fun view ->
        let v = view.View.center in
        let nbrs = Graph.neighbours view.View.graph v in
        match view.View.labels.(v) with
        | Some _ -> (
            match partner_of view v with
            | None -> false (* position out of range *)
            | Some u -> partner_of view u = Some v)
        | None ->
            (* Maximality: no unmatched neighbour either. *)
            Array.for_all (fun u -> view.View.labels.(u) <> None) nbrs);
  }

let sinkless_orientation =
  {
    lcl_name = "lcl-sinkless-orientation";
    lcl_radius = 2;
    valid =
      (fun view ->
        let v = view.View.center in
        let nbrs = Graph.neighbours view.View.graph v in
        let out u =
          let unbrs = Graph.neighbours view.View.graph u in
          let k = view.View.labels.(u) in
          if k >= 0 && k < Array.length unbrs then Some unbrs.(k) else None
        in
        match out v with
        | None -> Array.length nbrs = 0
        | Some u -> Array.length nbrs < 2 || out u <> Some v);
  }

(* ------------------------------------------------------------------ *)
(* Greedy constructors                                                 *)
(* ------------------------------------------------------------------ *)

let greedy_mis lg =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let label = Array.make n 0 in
  for v = 0 to n - 1 do
    if Array.for_all (fun u -> label.(u) = 0) (Graph.neighbours g v) then
      label.(v) <- 1
  done;
  label

let greedy_matching lg =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let partner = Array.make n (-1) in
  List.iter
    (fun (u, v) ->
      if partner.(u) < 0 && partner.(v) < 0 then begin
        partner.(u) <- v;
        partner.(v) <- u
      end)
    (Graph.edges g);
  Array.init n (fun v ->
      if partner.(v) < 0 then None
      else begin
        let nbrs = Graph.neighbours g v in
        let rec find k = if nbrs.(k) = partner.(v) then k else find (k + 1) in
        Some (find 0)
      end)
