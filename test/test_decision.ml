(* Tests for the decision layer: verdicts, properties, deciders, the
   Id-oblivious simulation A*, promise problems and randomised
   deciders. *)

open Locald_graph
open Locald_local
open Locald_decision

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rng () = Random.State.make [| 0xdec1de |]

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

let test_verdict () =
  check bool "all yes accepts" true (Verdict.accepts (Verdict.of_outputs [| true; true |]));
  (match Verdict.of_outputs [| true; false; false |] with
  | Verdict.Reject nos -> check (Alcotest.list int) "no-sayers" [ 1; 2 ] nos
  | Verdict.Accept -> Alcotest.fail "should reject");
  check bool "empty accepts" true (Verdict.accepts (Verdict.of_outputs [||]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let test_stock_properties () =
  let col = Property.proper_colouring ~k:3 in
  check bool "good colouring" true
    (col.Property.mem (Labelled.init (Gen.cycle 6) (fun v -> v mod 3)));
  check bool "bad colouring" false
    (col.Property.mem (Labelled.const (Gen.cycle 6) 0));
  check bool "colour out of range" false
    (col.Property.mem (Labelled.const (Gen.path 2) 5));
  let mis = Property.maximal_independent_set in
  (* Alternating set on a path: maximal and independent. *)
  check bool "MIS yes" true
    (mis.Property.mem (Labelled.init (Gen.path 5) (fun v -> v mod 2)));
  (* Empty set is not maximal. *)
  check bool "empty not maximal" false
    (mis.Property.mem (Labelled.const (Gen.path 5) 0));
  (* Adjacent members are not independent. *)
  check bool "clump not independent" false
    (mis.Property.mem (Labelled.const (Gen.path 3) 1))

let test_invariance_checker () =
  let rng = rng () in
  let col = Property.proper_colouring ~k:3 in
  check bool "colouring invariant" true
    (Property.check_invariance ~rng ~trials:25 col
       (Labelled.init (Gen.cycle 9) (fun v -> v mod 3)));
  (* A property peeking at node numbering is caught. *)
  let bogus = Property.make ~name:"node-0-is-red" (fun lg -> Labelled.label lg 0 = 0) in
  check bool "bogus property caught" false
    (Property.check_invariance ~rng ~trials:60 bogus
       (Labelled.init (Gen.cycle 9) (fun v -> v mod 3)))

(* ------------------------------------------------------------------ *)
(* Deciders                                                            *)
(* ------------------------------------------------------------------ *)

let colouring_decider =
  Algorithm.of_oblivious
    (Algorithm.make_oblivious ~name:"3col" ~radius:1 (fun view ->
         let c = View.center_label view in
         c >= 0 && c < 3
         && Array.for_all
              (fun u -> view.View.labels.(u) <> c)
              (Graph.neighbours view.View.graph view.View.center)))

let test_decide_and_evaluate () =
  let rng = rng () in
  let yes = Labelled.init (Gen.cycle 6) (fun v -> v mod 3) in
  let no = Labelled.const (Gen.cycle 6) 1 in
  let ids = Ids.sequential 6 in
  check bool "accepts yes" true (Verdict.accepts (Decider.decide colouring_decider yes ~ids));
  check bool "rejects no" true (Verdict.rejects (Decider.decide colouring_decider no ~ids));
  let e =
    Decider.evaluate ~rng ~regime:Ids.Unbounded ~assignments:20 colouring_decider
      ~expected:true ~instance:"cycle" yes
  in
  check bool "evaluation all correct" true (Decider.all_correct e);
  check int "assignments counted" 20 e.Decider.assignments;
  let e' =
    Decider.evaluate ~rng ~regime:Ids.Unbounded ~assignments:20 colouring_decider
      ~expected:true ~instance:"wrong-expectation" no
  in
  check int "all wrong when expectation flipped" 20 e'.Decider.wrong;
  check bool "failure witness recorded" true (e'.Decider.failure <> None)

let test_evaluate_exhaustive () =
  let yes = Labelled.init (Gen.path 3) (fun v -> v mod 2) in
  let e =
    Decider.evaluate_exhaustive ~bound:4 colouring_decider ~expected:true
      ~instance:"path" yes
  in
  check int "4P3 assignments" 24 e.Decider.assignments;
  check bool "all correct" true (Decider.all_correct e)

(* ------------------------------------------------------------------ *)
(* The simulation A*                                                   *)
(* ------------------------------------------------------------------ *)

(* The min-id-blaming decider: correct for 2-colouring but genuinely
   id-dependent (only the smaller endpoint of a violated edge says
   no). *)
let blaming_decider =
  Algorithm.make ~name:"blame-min" ~radius:1 (fun view ->
      let ids = match View.ids view with Some ids -> ids | None -> [||] in
      let c = view.View.center in
      let violators =
        Array.to_list (Graph.neighbours view.View.graph c)
        |> List.filter (fun u -> view.View.labels.(u) = view.View.labels.(c))
      in
      not (List.exists (fun u -> ids.(c) < ids.(u)) violators))

let test_a_star_recovers_obliviousness () =
  let rng = rng () in
  let yes = Labelled.init (Gen.path 5) (fun v -> v mod 2) in
  let no = Labelled.make (Gen.path 4) [| 0; 1; 1; 0 |] in
  (* The base decider is correct... *)
  check bool "base correct on yes" true
    (Decider.all_correct
       (Decider.evaluate ~rng ~regime:Ids.Unbounded ~assignments:30 blaming_decider
          ~expected:true ~instance:"" yes));
  check bool "base correct on no" true
    (Decider.all_correct
       (Decider.evaluate ~rng ~regime:Ids.Unbounded ~assignments:30 blaming_decider
          ~expected:false ~instance:"" no));
  (* ... but id-dependent ... *)
  check bool "base is id-dependent" true
    (Option.is_some
       (Oblivious.find_variance_sampled ~rng ~trials:60 ~regime:Ids.Unbounded
          blaming_decider no));
  (* ... and A* decides the same property obliviously. *)
  let simulated = Simulation.a_star ~budget:(Simulation.Exhaustive 5) blaming_decider in
  check bool "A* accepts yes" true
    (Verdict.accepts (Decider.decide_oblivious simulated yes));
  check bool "A* rejects no" true
    (Verdict.rejects (Decider.decide_oblivious simulated no))

let test_assignments_of_budget () =
  let count budget =
    Seq.fold_left (fun acc _ -> acc + 1) 0 (Simulation.assignments_of_budget budget ~k:2)
  in
  check int "exhaustive 3 ids, 2 nodes" 6 (count (Simulation.Exhaustive 3));
  check int "sampled count" 7
    (count (Simulation.Sampled { bound = 10; trials = 7; seed = 1 }))

(* ------------------------------------------------------------------ *)
(* Promise problems                                                    *)
(* ------------------------------------------------------------------ *)

let test_promise_to_property () =
  let p =
    Promise.make ~name:"even-cycles"
      ~promise:(fun lg -> Graph.is_cycle (Labelled.graph lg))
      ~mem:(fun lg -> Labelled.order lg mod 2 = 0)
  in
  let total = Promise.to_property p in
  check bool "in promise and yes" true (total.Property.mem (Labelled.const (Gen.cycle 6) ()));
  check bool "in promise, no" false (total.Property.mem (Labelled.const (Gen.cycle 5) ()));
  check bool "outside promise" false (total.Property.mem (Labelled.const (Gen.path 6) ()))

(* ------------------------------------------------------------------ *)
(* Randomised deciders                                                 *)
(* ------------------------------------------------------------------ *)

let test_randomized_estimate () =
  let rng = rng () in
  (* A per-node biased coin: accepting requires all nodes to say yes. *)
  let alg =
    Randomized.make ~name:"biased" ~radius:0 (fun node_rng _ ->
        Random.State.float node_rng 1.0 < 0.9)
  in
  let lg = Labelled.const (Gen.cycle 4) () in
  let est =
    Randomized_decider.estimate ~rng ~runs:300 ~oblivious:true alg ~ids:None
      ~expected:true ~instance:"cycle4" lg
  in
  let rate = Randomized_decider.accept_rate est in
  (* Expected acceptance 0.9^4 ~ 0.656. *)
  check bool "rate in plausible band" true (rate > 0.5 && rate < 0.8);
  check bool "success = accept for yes" true
    (Float.equal (Randomized_decider.success_rate est) rate)

(* ------------------------------------------------------------------ *)
(* Hereditariness                                                      *)
(* ------------------------------------------------------------------ *)

let test_hereditary_positive () =
  let rng = rng () in
  let col = Property.proper_colouring ~k:3 in
  check bool "3-colouring is hereditary (no violation found)" true
    (Hereditary.looks_hereditary_on ~rng ~samples:100 col
       [
         Labelled.init (Gen.cycle 9) (fun v -> v mod 3);
         Labelled.init (Gen.grid 3 3) (fun v -> ((v mod 3) + (v / 3)) mod 3);
       ])

let test_hereditary_negative () =
  let rng = rng () in
  let mis = Property.maximal_independent_set in
  let lg = Labelled.init (Gen.path 7) (fun v -> v mod 2) in
  (match Hereditary.connected_induced_counterexample ~rng ~samples:100 mis lg with
  | None -> Alcotest.fail "MIS should not be hereditary"
  | Some w ->
      (* The witness really is a violating connected induced subgraph. *)
      let sub, _ = Labelled.induced lg w.Hereditary.subgraph_nodes in
      check bool "witness violates" false (mis.Property.mem sub);
      check bool "witness connected" true
        (Graph.is_connected (Labelled.graph sub)));
  (* Non-members have no say. *)
  check bool "no counterexample on a no-instance" true
    (Hereditary.connected_induced_counterexample ~rng ~samples:50 mis
       (Labelled.const (Gen.path 4) 0)
    = None)

(* ------------------------------------------------------------------ *)
(* Nondeterministic local decision (NLD)                               *)
(* ------------------------------------------------------------------ *)

let test_nld_bipartite_completeness () =
  (* The prover certifies every bipartite instance. *)
  List.iter
    (fun g ->
      check bool "proved and accepted" true
        (Verdict.accepts
           (Nondeterministic.accepts_proved Nondeterministic.bipartite_scheme
              (Labelled.const g ()))))
    [ Gen.cycle 6; Gen.path 7; Gen.grid 3 4; Gen.complete_binary_tree 3;
      Gen.cycle 10 ]

let test_nld_bipartite_soundness () =
  (* No certificate assignment makes the verifier accept an odd
     cycle: exhaustively for C5, sampled for C9. *)
  let rng = rng () in
  check bool "C5 refuted exhaustively" true
    (Nondeterministic.refuted ~candidates:[ 0; 1 ]
       Nondeterministic.bipartite_scheme.Nondeterministic.verifier
       (Labelled.const (Gen.cycle 5) ()));
  check bool "C9 refuted (sampled)" true
    (Nondeterministic.refuted_sampled ~rng ~trials:300 ~candidates:[ 0; 1 ]
       Nondeterministic.bipartite_scheme.Nondeterministic.verifier
       (Labelled.const (Gen.cycle 9) ()))

let test_nld_beats_ld_here () =
  (* Even-vs-odd long cycles are locally indistinguishable — their
     views are pairwise isomorphic — so no local decider (with or
     without ids) exists for bipartiteness; the certificates above
     are doing real work. *)
  let even = Labelled.const (Gen.cycle 8) () in
  let odd = Labelled.const (Gen.cycle 9) () in
  let v_even = View.extract even ~center:0 ~radius:2 in
  let v_odd = View.extract odd ~center:0 ~radius:2 in
  check bool "views of C8 and C9 isomorphic" true
    (Iso.views_isomorphic ( = ) v_even v_odd)

let test_nld_even_cycle_scheme () =
  check bool "even cycle certified" true
    (Verdict.accepts
       (Nondeterministic.accepts_proved Nondeterministic.even_cycle_scheme
          (Labelled.const (Gen.cycle 6) ())));
  check bool "odd cycle refuted" true
    (Nondeterministic.refuted ~candidates:[ 0; 1 ]
       Nondeterministic.even_cycle_scheme.Nondeterministic.verifier
       (Labelled.const (Gen.cycle 7) ()));
  (* The scheme also rejects non-cycles through the degree check. *)
  check bool "path rejected under the prover" true
    (Verdict.rejects
       (Nondeterministic.accepts_proved Nondeterministic.even_cycle_scheme
          (Labelled.const (Gen.path 6) ())))

(* ------------------------------------------------------------------ *)
(* LCL specs                                                           *)
(* ------------------------------------------------------------------ *)

let test_lcl_colouring () =
  let spec = Lcl.proper_colouring ~k:3 in
  let yes = Labelled.init (Gen.cycle 9) (fun v -> v mod 3) in
  let no = Labelled.const (Gen.cycle 9) 1 in
  check bool "property yes" true ((Lcl.property spec).Property.mem yes);
  check bool "property no" false ((Lcl.property spec).Property.mem no);
  check bool "decider decides" true (Lcl.decides spec [ yes; no ])

let test_lcl_mis_and_dominating () =
  let graphs = [ Gen.cycle 7; Gen.grid 3 4; Gen.complete_binary_tree 3 ] in
  List.iter
    (fun g ->
      let lg = Labelled.const g 0 in
      let mis = Labelled.make g (Lcl.greedy_mis lg) in
      check bool "greedy MIS valid" true
        ((Lcl.property Lcl.maximal_independent_set).Property.mem mis);
      (* Every MIS is also a dominating set. *)
      check bool "MIS dominates" true
        ((Lcl.property Lcl.dominating_set).Property.mem mis);
      (* The empty set is neither. *)
      let empty = Labelled.const g 0 in
      check bool "empty not MIS" false
        ((Lcl.property Lcl.maximal_independent_set).Property.mem empty);
      check bool "empty not dominating" false
        ((Lcl.property Lcl.dominating_set).Property.mem empty))
    graphs

let test_lcl_matching () =
  let graphs = [ Gen.cycle 8; Gen.path 7; Gen.grid 3 3 ] in
  List.iter
    (fun g ->
      let lg = Labelled.const g 0 in
      let matching = Labelled.make g (Lcl.greedy_matching lg) in
      check bool "greedy matching valid" true
        ((Lcl.property Lcl.maximal_matching).Property.mem matching);
      (* Unmatching one endpoint breaks the pointer symmetry. *)
      let broken =
        Labelled.mapi
          (fun v x -> if v = 0 then None else x)
          matching
      in
      check bool "broken matching rejected" false
        ((Lcl.property Lcl.maximal_matching).Property.mem broken))
    graphs

let test_lcl_sinkless () =
  (* Orient a cycle consistently: every node points to its successor;
     no node's out-edge is reciprocated. *)
  let g = Gen.cycle 6 in
  let labels =
    Array.init 6 (fun v ->
        let nbrs = Graph.neighbours g v in
        let succ = (v + 1) mod 6 in
        let rec find k = if nbrs.(k) = succ then k else find (k + 1) in
        find 0)
  in
  let lg = Labelled.make g labels in
  check bool "cycle orientation sinkless-valid" true
    ((Lcl.property Lcl.sinkless_orientation).Property.mem lg);
  (* Two nodes pointing at each other violate the progress rule. *)
  let bad =
    Labelled.mapi
      (fun v x ->
        if v = 0 then (
          let nbrs = Graph.neighbours g 0 in
          let rec find k = if nbrs.(k) = 1 then k else find (k + 1) in
          find 0)
        else if v = 1 then (
          let nbrs = Graph.neighbours g 1 in
          let rec find k = if nbrs.(k) = 0 then k else find (k + 1) in
          find 0)
        else x)
      lg
  in
  check bool "2-cycle rejected" false
    ((Lcl.property Lcl.sinkless_orientation).Property.mem bad)

let test_lcl_deciders_are_oblivious () =
  let rng = rng () in
  let spec = Lcl.maximal_independent_set in
  let lg = Labelled.make (Gen.cycle 7) (Lcl.greedy_mis (Labelled.const (Gen.cycle 7) 0)) in
  let lifted = Algorithm.of_oblivious (Lcl.decider spec) in
  check bool "no id variance" true
    (Oblivious.find_variance_sampled ~rng ~trials:30 ~regime:Ids.Unbounded lifted
       lg
    = None)

(* ------------------------------------------------------------------ *)
(* Proof-labelling schemes                                             *)
(* ------------------------------------------------------------------ *)

let leader_instance g leader =
  Labelled.init g (fun v -> v = leader)

let test_pls_completeness () =
  let rng = rng () in
  List.iter
    (fun g ->
      let n = Graph.order g in
      let ids = Ids.shuffled rng n in
      let lg = leader_instance g (n / 2) in
      check bool "proved and accepted" true
        (Verdict.accepts (Pls.accepts_proved Pls.unique_leader lg ~ids)))
    [ Gen.cycle 8; Gen.grid 3 4; Gen.complete_binary_tree 3; Gen.path 9 ]

let test_pls_soundness_two_leaders () =
  let rng = rng () in
  let g = Gen.path 8 in
  let ids = Ids.shuffled rng 8 in
  let two = Labelled.init g (fun v -> v = 0 || v = 7) in
  (* Even the honest prover cannot certify two leaders... *)
  check bool "prover fails on two leaders" true
    (Verdict.rejects (Pls.accepts_proved Pls.unique_leader two ~ids));
  (* ... and random certificates do not help. *)
  let gen_certificate rng =
    {
      Pls.root_id = Random.State.int rng 16;
      level = Random.State.int rng 8;
      parent_id = Random.State.int rng 16;
    }
  in
  check bool "sampled certificates rejected (two leaders)" true
    (Pls.refuted_sampled ~rng ~trials:400 ~gen_certificate Pls.unique_leader two
       ~ids);
  let zero = Labelled.const g false in
  check bool "sampled certificates rejected (no leader)" true
    (Pls.refuted_sampled ~rng ~trials:400 ~gen_certificate Pls.unique_leader zero
       ~ids)

let test_pls_proof_size () =
  let rng = rng () in
  let g = Gen.cycle 16 in
  let ids = Ids.shuffled rng 16 in
  let lg = leader_instance g 3 in
  let certs = Pls.unique_leader.Pls.prover lg ~ids in
  let bits = Pls.proof_bits Pls.leader_cert_bits certs in
  (* Three identifiers/levels below n: O(log n) bits. *)
  check bool "logarithmic certificates" true (bits <= 3 * 5)

(* ------------------------------------------------------------------ *)
(* Decide-once memoisation and the assignment quotient                 *)
(* ------------------------------------------------------------------ *)

module Memo = Locald_runtime.Memo

(* A pure decide that reads identifiers value- and position-
   sensitively, so the exact-ids memo and the quotient have real work
   to be transparent over. *)
let weighed_alg m =
  Algorithm.make ~name:"weighed" ~radius:1 (fun view ->
      let acc = ref (View.center_id view) in
      for u = 0 to View.order view - 1 do
        acc := !acc + ((View.label view u + 1) * View.id view u)
      done;
      !acc mod m = 0)

let gen_labelled =
  QCheck2.Gen.(
    map2
      (fun shape lseed ->
        let k = 3 + (lseed mod 3) in
        let g =
          match shape with
          | 0 -> Gen.cycle k
          | 1 -> Gen.path k
          | 2 -> Gen.star (k - 1)
          | _ -> Gen.complete k
        in
        let st = Random.State.make [| lseed; shape |] in
        Labelled.init g (fun _ -> Random.State.int st 3))
      (int_bound 3) (int_bound 1000))

let with_mode mode f =
  let saved = Memo.default_mode () in
  Memo.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Memo.set_default_mode saved) f

let digest x = Digest.to_hex (Digest.string (Marshal.to_string x []))

let prop_memo_transparent =
  QCheck2.Test.make ~name:"memoised = unmemoised exhaustive evaluation"
    ~count:25 gen_labelled (fun lg ->
      let bound = Labelled.order lg + 1 in
      let eval alg expected mode quotient =
        with_mode mode (fun () ->
            digest
              (Decider.evaluate_exhaustive ~quotient ~bound alg ~expected
                 ~instance:"prop" lg))
      in
      let transparent alg expected =
        let reference = eval alg expected Memo.Off false in
        List.for_all
          (fun (mode, quotient) -> eval alg expected mode quotient = reference)
          [ (Memo.Off, true); (Memo.Exact_ids, false); (Memo.Exact_ids, true) ]
      in
      (* An id-reading decide with failures (exercises the quotient's
         naive fallback) and an all-accepting one (the pure quotient
         fast path). *)
      transparent (weighed_alg 3) false
      && transparent (Algorithm.make ~name:"yes" ~radius:1 (fun _ -> true)) true)

let prop_quotient_variance =
  QCheck2.Test.make ~name:"quotient variance iff naive variance" ~count:25
    gen_labelled (fun lg ->
      let bound = Labelled.order lg + 1 in
      let agree alg =
        let naive =
          Oblivious.find_variance_exhaustive ~quotient:false ~bound alg lg
        in
        let quot =
          Oblivious.find_variance_exhaustive ~quotient:true ~bound alg lg
        in
        match (naive, quot) with
        | None, None -> true
        | Some _, Some w ->
            (* The reconstructed witness must be a concrete,
               independently re-checkable counterexample. *)
            let out ids = (Runner.run alg lg ~ids).(w.Oblivious.node) in
            out w.Oblivious.ids_a <> out w.Oblivious.ids_b
        | _ -> false
      in
      agree (weighed_alg 3)
      && agree (Algorithm.make ~name:"const" ~radius:1 (fun _ -> true)))

let test_refuted_memo_transparent () =
  let refuted_on g =
    Nondeterministic.refuted ~candidates:[ 0; 1 ]
      Nondeterministic.bipartite_scheme.Nondeterministic.verifier
      (Labelled.const g ())
  in
  List.iter
    (fun (name, g, expected) ->
      let off = with_mode Memo.Off (fun () -> refuted_on g) in
      let exact = with_mode Memo.Exact_ids (fun () -> refuted_on g) in
      check bool (name ^ " (memo off)") expected off;
      check bool (name ^ " (memo exact)") expected exact)
    [ ("C5 refuted", Gen.cycle 5, true); ("C6 certified", Gen.cycle 6, false) ]

let quotient_cases =
  Alcotest.test_case "refuted transparent under memo" `Quick
    test_refuted_memo_transparent
  :: List.map QCheck_alcotest.to_alcotest
       [ prop_memo_transparent; prop_quotient_variance ]

let () =
  Alcotest.run "decision"
    [
      ("verdicts", [ Alcotest.test_case "of_outputs" `Quick test_verdict ]);
      ( "properties",
        [
          Alcotest.test_case "stock properties" `Quick test_stock_properties;
          Alcotest.test_case "invariance checking" `Quick test_invariance_checker;
        ] );
      ( "deciders",
        [
          Alcotest.test_case "decide and evaluate" `Quick test_decide_and_evaluate;
          Alcotest.test_case "exhaustive evaluation" `Quick test_evaluate_exhaustive;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "A* recovers obliviousness" `Quick
            test_a_star_recovers_obliviousness;
          Alcotest.test_case "budget streams" `Quick test_assignments_of_budget;
        ] );
      ("promise", [ Alcotest.test_case "to_property" `Quick test_promise_to_property ]);
      ( "randomised",
        [ Alcotest.test_case "estimate" `Quick test_randomized_estimate ] );
      ( "hereditary",
        [
          Alcotest.test_case "positive" `Quick test_hereditary_positive;
          Alcotest.test_case "negative with witness" `Quick test_hereditary_negative;
        ] );
      ("quotient", quotient_cases);
      ( "nondeterministic",
        [
          Alcotest.test_case "bipartite completeness" `Quick
            test_nld_bipartite_completeness;
          Alcotest.test_case "bipartite soundness" `Quick test_nld_bipartite_soundness;
          Alcotest.test_case "beyond LD" `Quick test_nld_beats_ld_here;
          Alcotest.test_case "even-cycle scheme" `Quick test_nld_even_cycle_scheme;
        ] );
      ( "lcl",
        [
          Alcotest.test_case "colouring" `Quick test_lcl_colouring;
          Alcotest.test_case "mis and dominating" `Quick test_lcl_mis_and_dominating;
          Alcotest.test_case "matching" `Quick test_lcl_matching;
          Alcotest.test_case "sinkless orientation" `Quick test_lcl_sinkless;
          Alcotest.test_case "deciders oblivious" `Quick test_lcl_deciders_are_oblivious;
        ] );
      ( "proof-labelling",
        [
          Alcotest.test_case "completeness" `Quick test_pls_completeness;
          Alcotest.test_case "soundness" `Quick test_pls_soundness_two_leaders;
          Alcotest.test_case "proof size" `Quick test_pls_proof_size;
        ] );
    ]
