(* Tests for the obliviousness certifier: the trace monitor and its
   input/synthetic provenance split, the certify verdict lattice
   (certified-oblivious, id-dependent with a confirmed witness,
   inconclusive on budget exhaustion or fault-degraded coverage), the
   orthogonal flags (radius violation, nondeterminism), and the lint
   rules with their comment/string masking. *)

open Locald_graph
open Locald_local
open Locald_decision
open Locald_analysis

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let seq_array n = Ids.to_array (Ids.sequential n)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_counts () =
  let lg = Labelled.make (Gen.cycle 5) (Array.init 5 (fun i -> i)) in
  let view = View.extract ~ids:(seq_array 5) lg ~center:0 ~radius:1 in
  let input = match View.ids view with Some a -> a | None -> [||] in
  let out, t =
    Trace.run
      ~input_ids:(fun a -> a == input)
      (fun v ->
        let c = View.center_id v in
        let l = View.center_label v in
        let k = View.order v in
        c + l + k)
      view
  in
  check int "output" 3 out;
  check int "input id reads" 1 t.Trace.input_id_reads;
  check int "input bulk reads" 0 t.Trace.input_bulk_reads;
  check int "synthetic id reads" 0 t.Trace.synthetic_id_reads;
  check int "label reads" 1 t.Trace.label_reads;
  check int "structure reads" 1 t.Trace.structure_reads;
  check int "total events" 3 (Trace.total_events t);
  check int "max depth" 0 t.Trace.max_depth;
  check bool "reads input ids" true (Trace.reads_input_ids t);
  match Trace.first_input_id_read t with
  | Some (View.Id_read { input = true; depth = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected an input id-read as first witness event"

let test_trace_provenance_split () =
  let lg = Labelled.make (Gen.path 3) [| 0; 1; 0 |] in
  let view = View.extract ~ids:(seq_array 3) lg ~center:1 ~radius:1 in
  let input = match View.ids view with Some a -> a | None -> [||] in
  let fresh = Array.map (fun i -> i + 10) input in
  let _, t =
    Trace.run
      ~input_ids:(fun a -> a == input)
      (fun v ->
        (* One read of the run's assignment, one read of an id array
           the decision manufactured itself (the [A*] pattern). *)
        let synthetic = View.center_id (View.reassign_ids v fresh) in
        let real = View.center_id v in
        synthetic + real)
      view
  in
  check int "input id reads" 1 t.Trace.input_id_reads;
  check int "synthetic id reads" 1 t.Trace.synthetic_id_reads;
  check bool "still input-reading" true (Trace.reads_input_ids t)

let test_trace_equal () =
  let lg = Labelled.make (Gen.path 3) [| 0; 1; 0 |] in
  let view = View.extract ~ids:(seq_array 3) lg ~center:1 ~radius:1 in
  let input = match View.ids view with Some a -> a | None -> [||] in
  let classify a = a == input in
  let f v = View.center_label v = 1 in
  let g v = View.center_id v = 1 in
  let _, t1 = Trace.run ~input_ids:classify f view in
  let _, t2 = Trace.run ~input_ids:classify f view in
  let _, t3 = Trace.run ~input_ids:classify g view in
  check bool "same decision, same trace" true (Trace.equal t1 t2);
  check bool "different decision, different trace" false (Trace.equal t1 t3)

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

let path_instance n =
  ( "path" ^ string_of_int n,
    Labelled.make (Gen.path n) (Array.init n (fun v -> v mod 2)) )

let parity_alg =
  Algorithm.make ~name:"parity" ~radius:1 (fun v -> View.center_label v = 0)

let threshold_alg =
  Algorithm.make ~name:"id<2" ~radius:1 (fun v -> View.center_id v < 2)

let test_certify_oblivious () =
  let report = Analysis.certify parity_alg ~instances:[ path_instance 5 ] in
  check bool "certified" true (Analysis.certified report);
  check bool "not id-dependent" false (Analysis.id_dependent report);
  check (Alcotest.option bool) "no confirmation applies" None
    (Analysis.confirmed report);
  check int "views" 5 report.Analysis.rep_views;
  check int "total" 5 report.Analysis.rep_total;
  check int "nothing degraded" 0 report.Analysis.rep_degraded;
  check bool "events recorded" true (report.Analysis.rep_events > 0);
  check int "no flags" 0 (List.length report.Analysis.rep_flags)

let test_certify_id_dependent_confirmed () =
  let name, lg = path_instance 4 in
  let report =
    Analysis.certify threshold_alg
      ~confirm:(Analysis.Confirm_exhaustive 4)
      ~instances:[ (name, lg) ]
  in
  check bool "id-dependent" true (Analysis.id_dependent report);
  check (Alcotest.option bool) "semantically confirmed" (Some true)
    (Analysis.confirmed report);
  match report.Analysis.rep_verdict with
  | Analysis.Id_dependent w -> (
      check string "witness instance" name w.Analysis.w_instance;
      check int "first-in-order witness node" 0 w.Analysis.w_node;
      check bool "witness trace reads input ids" true
        (Trace.reads_input_ids w.Analysis.w_trace);
      (match w.Analysis.w_access with
      | View.Id_read { input = true; _ } -> ()
      | _ -> Alcotest.fail "witness access should be an input id-read");
      match w.Analysis.w_confirmation with
      | Some c ->
          check bool "variance witness found" true
            (c.Analysis.cf_variance <> None)
      | None -> Alcotest.fail "expected a confirmation record")
  | _ -> Alcotest.fail "expected an Id_dependent verdict"

let test_certify_simulation_oblivious () =
  (* [A*] over an id-reading decider, certified WITHOUT the id strip:
     the certificate rests on provenance (every id it reads is one it
     reassigned itself), not on the ids being hidden. *)
  let ob = Simulation.a_star ~budget:(Simulation.Exhaustive 4) threshold_alg in
  let alg =
    Algorithm.make ~name:ob.Algorithm.ob_name ~radius:ob.Algorithm.ob_radius
      ob.Algorithm.ob_decide
  in
  let report = Analysis.certify alg ~instances:[ path_instance 4 ] in
  check bool "simulation certifies oblivious" true (Analysis.certified report);
  check bool "synthetic re-decisions traced" true
    (report.Analysis.rep_events > report.Analysis.rep_views)

let test_certify_budget_inconclusive () =
  let report =
    Analysis.certify ~budget:2 parity_alg ~instances:[ path_instance 5 ]
  in
  check bool "not certified" false (Analysis.certified report);
  match report.Analysis.rep_verdict with
  | Analysis.Inconclusive { covered; total; why } ->
      check int "covered" 2 covered;
      check int "total" 5 total;
      check bool "why mentions the budget" true (contains_sub why "budget")
  | _ -> Alcotest.fail "expected an Inconclusive verdict"

let test_certify_fault_degraded () =
  (* Satellite: under a crash plan the certifier must report degraded
     coverage, never a false certificate for the surviving nodes. *)
  let plan = Faults.make ~crashes:[ (1, 1) ] () in
  let report =
    Analysis.certify ~plan parity_alg ~instances:[ path_instance 3 ]
  in
  check bool "no false certificate" false (Analysis.certified report);
  check bool "degradation counted" true (report.Analysis.rep_degraded > 0);
  match report.Analysis.rep_verdict with
  | Analysis.Inconclusive { why; _ } ->
      check bool "why mentions degradation" true (contains_sub why "degraded")
  | _ -> Alcotest.fail "expected an Inconclusive verdict"

let test_certify_nondeterminism_flag () =
  (* A stateful decision: the first run reads the label, the second
     reads nothing. Outputs agree, so only the trace comparison can
     catch it. One node keeps both runs on one work item. *)
  let lg = Labelled.make (Gen.path 1) [| 0 |] in
  let flip = ref false in
  let alg =
    Algorithm.make ~name:"flaky" ~radius:1 (fun v ->
        flip := not !flip;
        if !flip then View.center_label v = 0 else true)
  in
  let report = Analysis.certify alg ~instances:[ ("one", lg) ] in
  check bool "nondeterminism flagged" true
    (List.exists
       (function Analysis.Nondeterminism _ -> true | _ -> false)
       report.Analysis.rep_flags)

let test_certify_radius_violation () =
  (* Declared radius 0, but the decision reads a depth-1 label when it
     can see one. Certifying with slack extracts the wider view and
     surfaces the violation. *)
  let lg = Labelled.make (Gen.path 2) [| 0; 1 |] in
  let greedy =
    Algorithm.make ~name:"greedy" ~radius:0 (fun v ->
        if View.order v > 1 then (
          let other = if v.View.center = 0 then 1 else 0 in
          View.label v other >= 0)
        else true)
  in
  let report = Analysis.certify ~slack:1 greedy ~instances:[ ("edge", lg) ] in
  check bool "oblivious despite the violation" true (Analysis.certified report);
  check bool "radius violation flagged" true
    (List.exists
       (function
         | Analysis.Radius_violation { rv_depth = 1; rv_declared = 0; _ } ->
             true
         | _ -> false)
       report.Analysis.rep_flags);
  check int "max depth over traces" 1 report.Analysis.rep_max_depth

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let rule =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Lint.rule_name r))
    ( = )

let rules = Alcotest.list rule
let scan = Lint.scan_line ~allow_ids:false

let test_lint_positives () =
  check rules "naked ids field access" [ Lint.Naked_ids_access ]
    (scan "let a = view.View.ids in");
  check rules "structural graph compare" [ Lint.Poly_compare ]
    (scan "if a.View.graph = b.View.graph then x else y");
  check rules "structural labels compare" [ Lint.Poly_compare ]
    (scan "assert (u.View.labels <> w.View.labels);");
  check rules "polymorphic hash of payload" [ Lint.Poly_compare ]
    (scan "Hashtbl.hash view.View.labels");
  check rules "nondeterministic seeding" [ Lint.Self_init ]
    (scan "let () = Random.self_init ()")

let test_lint_negatives () =
  check rules "accessor call" []
    (scan "let ids = match View.ids view with Some a -> a | None -> [||] in");
  check rules "qualified accessor" [] (scan "Locald_graph.View.ids view");
  check rules "hash as a hash function" []
    (scan "Iso.view_signature Hashtbl.hash v");
  check rules "hash of scalar projection" []
    (scan "Hashtbl.hash (v.View.center, n)");
  check rules "record-literal binding" []
    (scan "let r = { g = view.View.graph; n = k } in");
  check rules "physical equality" [] (scan "a.View.graph == b");
  check rules "allowed inside lib/graph" []
    (Lint.scan_line ~allow_ids:true "let a = view.View.ids in")

let test_lint_masking () =
  check rules "comment is prose" []
    (scan "(* Hashtbl.hash view.View.labels is banned *)");
  check rules "string is prose" []
    (scan "let doc = \"never call Random.self_init here\"");
  check rules "code after a comment still scans" [ Lint.Naked_ids_access ]
    (scan "let a = (* see note *) view.View.ids");
  check rules "allow marker suppresses" []
    (scan "let a = view.View.ids (* locald-lint: allow *)")

let test_lint_multiline_state () =
  let text =
    String.concat "\n"
      [
        "(* documentation:";
        "   Hashtbl.hash view.View.labels would be flagged in code";
        "*)";
        "let a = view.View.ids";
      ]
  in
  let fs = Lint.scan_string ~file:"snippet.ml" ~allow_ids:false text in
  check int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check int "on the code line" 4 f.Lint.f_line;
  check rules "the ids rule" [ Lint.Naked_ids_access ] [ f.Lint.f_rule ];
  let continued =
    String.concat "\n"
      [
        "let doc = \"backslash-continued string \\";
        "   mentioning Random.self_init inside it\"";
        "let b = Random.self_init";
      ]
  in
  let fs = Lint.scan_string ~file:"snippet.ml" ~allow_ids:false continued in
  check int "string spans lines" 1 (List.length fs);
  check int "finding on the real call" 3 (List.hd fs).Lint.f_line

let test_lint_decorated_key () =
  check rules "polymorphic hash on a memo key" [ Lint.Decorated_key ]
    (scan "let t = Memo.create ~hash:Hashtbl.hash ~equal:Memo.equal_node_ids ()");
  check rules "qualified polymorphic hash" [ Lint.Decorated_key ]
    (scan "Memo.create ~hash:(Stdlib.Hashtbl.hash) ()");
  check rules "structural equality on a memo key" [ Lint.Decorated_key ]
    (scan "let t = Memo.create ~equal:( = ) ()");
  check rules "polymorphic compare on a memo key" [ Lint.Decorated_key ]
    (scan "Memo.create ~equal:compare ()");
  check rules "mediated key functions" []
    (scan
       "Memo.create ~hash:(View.fingerprint Memo.structural_hash) \
        ~equal:(View.equal_repr Memo.structural_equal) ()");
  check rules "designated constructor" [] (scan "Memo.create_node_ids ()");
  check rules "poly hash away from a memo" []
    (scan "let h = Hashtbl.hash (name, radius) in");
  check rules "allowed inside lib/runtime" []
    (Lint.scan_line ~allow_decorated:true ~allow_ids:false
       "let t = Memo.create ~hash:Hashtbl.hash ~equal:( = ) ()");
  check rules "comment is prose" []
    (scan "(* never Memo.create ~equal:( = ) on decorated keys *)")

let test_lint_lib_self_scan () =
  (* The repo's own gate: lib/ must be lint-clean. The sources sit one
     level up from the test runner's working directory inside _build;
     skip silently if the layout ever changes (CI runs the real
     [locald lint lib] gate from the repo root regardless). *)
  let candidates = [ Filename.concat ".." "lib"; "lib" ] in
  let root =
    List.find_opt
      (fun r -> Sys.file_exists r && Sys.is_directory r)
      candidates
  in
  match root with
  | None -> ()
  | Some root ->
      let fs = Lint.scan_tree ~roots:[ root ] in
      List.iter
        (fun f ->
          Printf.printf "unexpected finding: %s\n"
            (Format.asprintf "%a" Lint.pp_finding f))
        fs;
      check int "lib is lint-clean" 0 (List.length fs)

let () =
  Alcotest.run "analysis"
    [
      ( "trace",
        [
          Alcotest.test_case "event counts" `Quick test_trace_counts;
          Alcotest.test_case "provenance split" `Quick
            test_trace_provenance_split;
          Alcotest.test_case "trace equality" `Quick test_trace_equal;
        ] );
      ( "certify",
        [
          Alcotest.test_case "oblivious" `Quick test_certify_oblivious;
          Alcotest.test_case "id-dependent confirmed" `Quick
            test_certify_id_dependent_confirmed;
          Alcotest.test_case "simulation oblivious" `Quick
            test_certify_simulation_oblivious;
          Alcotest.test_case "budget inconclusive" `Quick
            test_certify_budget_inconclusive;
          Alcotest.test_case "fault-degraded coverage" `Quick
            test_certify_fault_degraded;
          Alcotest.test_case "nondeterminism flag" `Quick
            test_certify_nondeterminism_flag;
          Alcotest.test_case "radius violation flag" `Quick
            test_certify_radius_violation;
        ] );
      ( "lint",
        [
          Alcotest.test_case "positives" `Quick test_lint_positives;
          Alcotest.test_case "negatives" `Quick test_lint_negatives;
          Alcotest.test_case "masking" `Quick test_lint_masking;
          Alcotest.test_case "multiline state" `Quick
            test_lint_multiline_state;
          Alcotest.test_case "decorated keys" `Quick test_lint_decorated_key;
          Alcotest.test_case "lib self-scan" `Quick test_lint_lib_self_scan;
        ] );
    ]
