(* Tests for the LOCAL-model simulator: identifier assignments and
   regimes, the two execution engines, obliviousness checking, and the
   OI/PO comparison models. *)

open Locald_graph
open Locald_local

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rng () = Random.State.make [| 0xfeed |]

(* ------------------------------------------------------------------ *)
(* Identifier assignments                                              *)
(* ------------------------------------------------------------------ *)

let test_ids_validation () =
  let raised f = try ignore (f ()); false with Ids.Invalid_ids _ -> true in
  check bool "duplicates rejected" true (raised (fun () -> Ids.of_array [| 1; 1 |]));
  check bool "negative rejected" true (raised (fun () -> Ids.of_array [| -1; 0 |]));
  let ids = Ids.of_array [| 5; 3; 9 |] in
  check int "assign" 3 (Ids.assign ids 1);
  check int "max" 9 (Ids.max_id ids);
  check int "size" 3 (Ids.size ids)

let test_ids_generators () =
  let rng = rng () in
  let seq = Ids.sequential 5 in
  check (Alcotest.array int) "sequential" [| 0; 1; 2; 3; 4 |] (Ids.to_array seq);
  let sh = Ids.shuffled rng 30 in
  check (Alcotest.list int) "shuffled is a permutation"
    (List.init 30 Fun.id)
    (List.sort compare (Array.to_list (Ids.to_array sh)));
  let rb = Ids.random_below rng ~bound:100 20 in
  check bool "random_below respects bound" true
    (Array.for_all (fun id -> id < 100) (Ids.to_array rb));
  let off = Ids.offset seq 10 in
  check int "offset" 12 (Ids.assign off 2)

let test_enumerate_injections_count () =
  (* 3 nodes into 4 ids: 4 * 3 * 2 = 24 injections. *)
  let count = Seq.fold_left (fun acc _ -> acc + 1) 0 (Ids.enumerate_injections ~n:3 ~bound:4) in
  check int "injection count" 24 count;
  (* All distinct and valid. *)
  let all = List.of_seq (Ids.enumerate_injections ~n:2 ~bound:3) in
  let arrays = List.map Ids.to_array all in
  check int "distinct" (List.length arrays)
    (List.length (List.sort_uniq compare arrays))

let test_regimes () =
  let rng = rng () in
  let regime = Ids.f_linear_plus 2 in
  check bool "valid sample" true
    (Ids.respects regime ~n:10 (Ids.sample rng regime ~n:10));
  check bool "too-large id violates" false
    (Ids.respects regime ~n:3 (Ids.of_array [| 0; 1; 7 |]));
  check bool "unbounded accepts anything" true
    (Ids.respects Ids.Unbounded ~n:3 (Ids.of_array [| 0; 1; 1_000_000 |]));
  (* The oracle regime is monotone and >= identity. *)
  (match Ids.f_oracle ~seed:3 with
  | Ids.Bounded { f; _ } ->
      let mono = ref true in
      for n = 1 to 60 do
        if f n < f (n - 1) || f n < n then mono := false
      done;
      check bool "oracle f monotone and >= n" true !mono
  | Ids.Unbounded -> Alcotest.fail "oracle should be bounded")

(* ------------------------------------------------------------------ *)
(* Runner engines                                                      *)
(* ------------------------------------------------------------------ *)

(* An algorithm whose output depends on everything in the view:
   a hash of the sorted (id, label) pairs and the edge count. *)
let fingerprint_algorithm ~radius =
  Algorithm.make ~name:"fingerprint" ~radius (fun view ->
      let ids = match View.ids view with Some ids -> ids | None -> [||] in
      let pairs =
        Array.to_list (Array.mapi (fun v id -> (id, view.View.labels.(v))) ids)
      in
      Hashtbl.hash (List.sort compare pairs, Graph.size view.View.graph))

let test_engines_agree () =
  let rng = rng () in
  List.iter
    (fun g ->
      let lg = Labelled.init g (fun v -> v mod 3) in
      let ids = Ids.shuffled rng (Graph.order g) in
      List.iter
        (fun radius ->
          let alg = fingerprint_algorithm ~radius in
          check (Alcotest.array int)
            (Printf.sprintf "engines agree (n=%d, t=%d)" (Graph.order g) radius)
            (Runner.run alg lg ~ids)
            (Runner.run_message_passing alg lg ~ids))
        [ 0; 1; 2; 3 ])
    [ Gen.cycle 7; Gen.grid 3 4; Gen.complete_binary_tree 3; Gen.star 6 ]

let test_run_oblivious () =
  let lg = Labelled.init (Gen.cycle 5) (fun v -> v) in
  let ob =
    Algorithm.make_oblivious ~name:"sum" ~radius:1 (fun view ->
        Array.fold_left ( + ) 0 view.View.labels)
  in
  let out = Runner.run_oblivious ob lg in
  (* Node 0 sees labels {4, 0, 1}. *)
  check int "node 0" 5 out.(0)

let test_message_passing_stats () =
  let lg = Labelled.init (Gen.cycle 6) (fun v -> v) in
  let rng = rng () in
  let ids = Ids.shuffled rng 6 in
  let alg = fingerprint_algorithm ~radius:2 in
  let out, stats = Runner.run_message_passing_stats alg lg ~ids in
  check (Alcotest.array int) "outputs agree with the plain engine"
    (Runner.run_message_passing alg lg ~ids)
    out;
  check int "rounds = radius + 1" 3 stats.Runner.rounds;
  (* Each round sends over both directions of every edge. *)
  check int "messages = rounds * 2m" (3 * 2 * 6) stats.Runner.messages;
  check bool "payload grows with knowledge" true (stats.Runner.payload_items > 0);
  check bool "net never exceeds gross" true
    (stats.Runner.new_items <= stats.Runner.payload_items)

let test_stats_exact_accounting () =
  (* The 2-path at radius 1, worked by hand. Two rounds over one edge:
     4 messages. Round 1 carries each node's initial self-knowledge
     (1 item each, both new); by round 2 both nodes know everything
     (2 nodes + 1 edge = 3 items each), all redundant. *)
  let lg = Labelled.init (Gen.path 2) (fun v -> v) in
  let alg = fingerprint_algorithm ~radius:1 in
  let _, stats =
    Runner.run_message_passing_stats alg lg ~ids:(Ids.sequential 2)
  in
  check int "rounds" 2 stats.Runner.rounds;
  check int "messages" 4 stats.Runner.messages;
  check int "gross payload" (2 + 6) stats.Runner.payload_items;
  check int "net payload" 2 stats.Runner.new_items

let prop_stats_formulae =
  QCheck2.Test.make ~name:"gossip stats formulae on random graphs" ~count:40
    QCheck2.Gen.(pair (int_range 2 14) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng ~n ~p:0.25 in
      let lg = Labelled.init g (fun v -> (v * 3) mod 4) in
      let ids = Ids.shuffled rng n in
      let radius = Random.State.int rng 3 in
      let alg = fingerprint_algorithm ~radius in
      let out, stats = Runner.run_message_passing_stats alg lg ~ids in
      stats.Runner.rounds = radius + 1
      && stats.Runner.messages = stats.Runner.rounds * 2 * Graph.size g
      && stats.Runner.new_items <= stats.Runner.payload_items
      && out = Runner.run alg lg ~ids)

let test_runner_size_mismatch () =
  let lg = Labelled.const (Gen.cycle 4) () in
  let alg = fingerprint_algorithm ~radius:1 in
  let raised =
    try ignore (Runner.run alg lg ~ids:(Ids.sequential 3)); false
    with Ids.Invalid_ids _ -> true
  in
  check bool "size mismatch rejected" true raised

(* ------------------------------------------------------------------ *)
(* Obliviousness checking                                              *)
(* ------------------------------------------------------------------ *)

let test_variance_detection () =
  let rng = rng () in
  let lg = Labelled.const (Gen.cycle 6) () in
  (* An algorithm that outputs its own id's parity: clearly not
     oblivious. *)
  let parity =
    Algorithm.make ~name:"parity" ~radius:0 (fun view ->
        View.center_id view mod 2 = 0)
  in
  check bool "variance found" true
    (Option.is_some
       (Oblivious.find_variance_sampled ~rng ~trials:40 ~regime:Ids.Unbounded
          parity lg));
  (* A label-only algorithm is oblivious. *)
  let ob = Algorithm.of_oblivious
      (Algorithm.make_oblivious ~name:"const" ~radius:1 (fun _ -> true))
  in
  check bool "no variance for oblivious" true
    (Oblivious.find_variance_sampled ~rng ~trials:40 ~regime:Ids.Unbounded ob lg
    = None)

let test_variance_exhaustive () =
  let lg = Labelled.const (Gen.path 3) () in
  let parity =
    Algorithm.make ~name:"parity" ~radius:0 (fun view ->
        View.center_id view mod 2 = 0)
  in
  check bool "exhaustive variance found" true
    (Option.is_some (Oblivious.find_variance_exhaustive ~bound:4 parity lg))

(* ------------------------------------------------------------------ *)
(* Randomised algorithms                                               *)
(* ------------------------------------------------------------------ *)

let test_randomized_run () =
  let rng = rng () in
  let lg = Labelled.const (Gen.cycle 5) () in
  let alg =
    Randomized.make ~name:"coin" ~radius:0 (fun node_rng _ ->
        Random.State.bool node_rng)
  in
  let out = Randomized.run ~rng ~oblivious:true alg lg ~ids:None in
  check int "one output per node" 5 (Array.length out)

let test_geometric_and_fuel () =
  let rng = rng () in
  for _ = 1 to 100 do
    let l = Randomized.geometric rng in
    check bool "geometric >= 1" true (l >= 1)
  done;
  check int "4^0-ish base" 4 (Randomized.four_pow_capped ~cap:1000 1);
  check int "4^3" 64 (Randomized.four_pow_capped ~cap:1000 3);
  check int "cap saturates" 1000 (Randomized.four_pow_capped ~cap:1000 40)

(* ------------------------------------------------------------------ *)
(* OI and PO models                                                    *)
(* ------------------------------------------------------------------ *)

let test_order_invariant_wrapping () =
  let rng = rng () in
  let lg = Labelled.const (Gen.path 4) () in
  (* Rank-based decisions are invariant under monotone re-embedding. *)
  let oi =
    Models.order_invariant ~name:"is-local-min" ~radius:1 (fun view ->
        let ids = match View.ids view with Some ids -> ids | None -> [||] in
        let c = view.View.center in
        Array.for_all (fun u -> u = c || ids.(u) > ids.(c))
          (Array.init (View.order view) Fun.id))
  in
  check bool "order-invariant" true
    (Models.find_order_variance ~rng ~trials:50 oi lg = None);
  (* Magnitude-based decisions are not. *)
  let magnitude =
    Algorithm.make ~name:"big-id" ~radius:0 (fun view -> View.center_id view > 10)
  in
  check bool "magnitude not order-invariant" true
    (Option.is_some (Models.find_order_variance ~rng ~trials:100 magnitude lg))

let test_po_model () =
  let lg = Labelled.const (Gen.matching 3) () in
  let alg =
    {
      Models.po_name = "tail";
      po_decide =
        (fun pov ->
          match pov.Models.incident with
          | [ e ] -> e.Models.outward
          | _ -> false);
    }
  in
  let oriented = [ (0, 1); (2, 3); (4, 5) ] in
  let out = Models.run_po alg lg ~oriented in
  check (Alcotest.array bool) "orientation read back"
    [| true; false; true; false; true; false |]
    out;
  (* Orientation must cover the edge set exactly. *)
  let raised =
    try ignore (Models.run_po alg lg ~oriented:[ (0, 1) ]); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "partial orientation rejected" true raised

(* ------------------------------------------------------------------ *)
(* Protocols and Cole-Vishkin                                          *)
(* ------------------------------------------------------------------ *)

let test_protocol_engine () =
  (* A toy protocol: every node computes the max id in the graph by
     flooding; halts after diameter+1 unchanged rounds (here: fixed
     round budget on a path). *)
  let proto =
    {
      Protocol.proto_name = "max-flood";
      init = (fun ~id ~degree:_ ~input:_ -> (id, 0));
      emit = (fun (m, _) -> m);
      halted = (fun (_, r) -> r >= 6);
      round =
        (fun (m, r) ~received ->
          (Array.fold_left max m received, r + 1));
    }
  in
  let lg = Labelled.const (Gen.path 7) () in
  let rng = rng () in
  let ids = Ids.shuffled rng 7 in
  let states, outcome = Protocol.run ~max_rounds:10 proto lg ~ids in
  check bool "all halted" true outcome.Protocol.all_halted;
  check int "rounds used" 6 outcome.Protocol.rounds_used;
  let global_max = Ids.max_id ids in
  Array.iter (fun (m, _) -> check int "max flooded" global_max m) states

let test_cole_vishkin_small () =
  let rng = rng () in
  List.iter
    (fun n ->
      let ids = Ids.shuffled rng n in
      let cols, outcome, _ = Symmetry.run_on_cycle ~n ~ids () in
      check bool "halted" true outcome.Protocol.all_halted;
      check bool
        (Printf.sprintf "proper 3-colouring on C%d" n)
        true
        (Symmetry.is_proper_colouring (Gen.cycle n) cols ~k:3))
    [ 3; 4; 5; 8; 17; 64 ]

let test_cole_vishkin_huge_ids () =
  (* Magnitude does not matter: offset the identifiers far beyond n. *)
  let rng = rng () in
  let n = 33 in
  let ids = Ids.offset (Ids.shuffled rng n) 1_000_000 in
  let cols, _, stable = Symmetry.run_on_cycle ~cv_rounds:16 ~n ~ids () in
  check bool "proper with huge ids" true
    (Symmetry.is_proper_colouring (Gen.cycle n) cols ~k:3);
  (* log* of anything representable is tiny. *)
  check bool "stabilises in very few iterations" true (stable <= 6)

let test_cole_vishkin_log_star_flat () =
  (* The measured stabilisation iteration barely moves while n grows
     by two orders of magnitude. *)
  let rng = rng () in
  let measure n =
    let ids = Ids.shuffled rng n in
    let _, _, stable = Symmetry.run_on_cycle ~n ~ids () in
    stable
  in
  let small = measure 8 and large = measure 512 in
  check bool "log* flatness" true (large <= small + 2)

let test_luby_mis () =
  let rng = rng () in
  List.iteri
    (fun i g ->
      let n = Graph.order g in
      let ids = Ids.shuffled rng n in
      let labels, outcome = Symmetry.run_luby ~seed:(i + 1) ~max_rounds:60 g ~ids in
      check bool "terminates" true outcome.Protocol.all_halted;
      let lg = Labelled.make g labels in
      check bool "result is an MIS" true
        ((Locald_decision.Lcl.property Locald_decision.Lcl.maximal_independent_set)
           .Locald_decision.Property.mem lg))
    [ Gen.cycle 9; Gen.grid 5 5; Gen.complete 6; Gen.complete_binary_tree 4;
      Gen.random_connected (Random.State.make [| 3 |]) ~n:40 ~p:0.1 ]

let prop_luby_mis_random =
  QCheck2.Test.make ~name:"Luby MIS valid on random graphs" ~count:40
    QCheck2.Gen.(pair (int_range 3 25) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng ~n ~p:0.2 in
      let ids = Ids.shuffled rng n in
      let labels, outcome = Symmetry.run_luby ~seed ~max_rounds:80 g ~ids in
      outcome.Protocol.all_halted
      && (Locald_decision.Lcl.property
            Locald_decision.Lcl.maximal_independent_set)
           .Locald_decision.Property.mem
           (Labelled.make g labels))

(* ------------------------------------------------------------------ *)
(* View trees (universal covers)                                       *)
(* ------------------------------------------------------------------ *)

let test_view_tree_shape () =
  let lg = Labelled.init (Gen.path 3) (fun v -> v) in
  let t = Cover.view_tree lg ~node:1 ~depth:1 in
  check int "root label" 1 (Cover.label t);
  check int "two children" 2 (List.length (Cover.children t));
  check int "depth" 1 (Cover.depth t);
  (* Depth 2 from an endpoint: 0 -> 1 -> {0, 2} (walks backtrack). *)
  let t = Cover.view_tree lg ~node:0 ~depth:2 in
  check int "size of depth-2 endpoint tree" 4 (Cover.size t)

let test_view_tree_cycle_symmetry () =
  (* All nodes of an unlabelled cycle are view-equivalent at every
     depth — the classic anonymous-network obstruction. *)
  let lg = Labelled.const (Gen.cycle 7) () in
  check int "one class" 1 (Cover.count_classes lg ~depth:4);
  check bool "witness pair exists" true
    (Cover.indistinguishable_nodes lg ~depth:4 <> None)

let test_view_tree_path_classes () =
  (* On a path, nodes at mirrored positions share view trees; depth
     must be large enough to feel the ends. *)
  let lg = Labelled.const (Gen.path 5) () in
  let cls = Cover.classes lg ~depth:4 in
  check int "mirror symmetry" cls.(0) cls.(4);
  check int "mirror symmetry inner" cls.(1) cls.(3);
  check bool "middle distinct from ends" true (cls.(2) <> cls.(0));
  check int "three classes" 3 (Cover.count_classes lg ~depth:4)

let test_stable_depth () =
  let lg = Labelled.const (Gen.path 5) () in
  let d = Cover.stable_depth lg in
  check bool "stabilises within n-1" true (d <= 4);
  check int "stable partition"
    (Cover.count_classes lg ~depth:d)
    (Cover.count_classes lg ~depth:(d + 1));
  check int "cycle stabilises immediately" 0
    (Cover.stable_depth (Labelled.const (Gen.cycle 6) ()))

let prop_ball_iso_implies_view_tree_equal =
  (* Classical fact made executable: the depth-d view tree unfolds
     from the radius-d ball, so ball isomorphism implies view-tree
     equality (the converse fails — covers identify more). *)
  QCheck2.Test.make ~name:"ball isomorphism implies view-tree equality" ~count:60
    QCheck2.Gen.(pair (int_range 3 14) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng ~n ~p:0.25 in
      let lg = Labelled.init g (fun v -> v mod 2) in
      let u = Random.State.int rng n and v = Random.State.int rng n in
      let d = 1 + Random.State.int rng 2 in
      let balls_iso =
        Iso.views_isomorphic ( = )
          (View.extract lg ~center:u ~radius:d)
          (View.extract lg ~center:v ~radius:d)
      in
      (not balls_iso)
      || Cover.equal (Cover.view_tree lg ~node:u ~depth:d)
           (Cover.view_tree lg ~node:v ~depth:d))

let test_view_tree_labels_matter () =
  let a = Labelled.init (Gen.cycle 4) (fun v -> v mod 2) in
  let cls = Cover.classes a ~depth:2 in
  check bool "labels split the cycle" true (cls.(0) <> cls.(1));
  check int "two classes" 2 (Cover.count_classes a ~depth:2)

(* ------------------------------------------------------------------ *)
(* qcheck: engine agreement on random graphs                           *)
(* ------------------------------------------------------------------ *)

let prop_engines_agree =
  QCheck2.Test.make ~name:"direct = message-passing on random graphs" ~count:40
    QCheck2.Gen.(pair (int_range 2 14) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng ~n ~p:0.25 in
      let lg = Labelled.init g (fun v -> (v * 7) mod 5) in
      let ids = Ids.shuffled rng n in
      let radius = Random.State.int rng 3 in
      let alg = fingerprint_algorithm ~radius in
      Runner.run alg lg ~ids = Runner.run_message_passing alg lg ~ids)

let () =
  Alcotest.run "local"
    [
      ( "ids",
        [
          Alcotest.test_case "validation" `Quick test_ids_validation;
          Alcotest.test_case "generators" `Quick test_ids_generators;
          Alcotest.test_case "injection enumeration" `Quick test_enumerate_injections_count;
          Alcotest.test_case "regimes" `Quick test_regimes;
        ] );
      ( "runner",
        [
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          Alcotest.test_case "oblivious runs" `Quick test_run_oblivious;
          Alcotest.test_case "communication stats" `Quick test_message_passing_stats;
          Alcotest.test_case "exact accounting" `Quick test_stats_exact_accounting;
          Alcotest.test_case "size mismatch" `Quick test_runner_size_mismatch;
          QCheck_alcotest.to_alcotest prop_stats_formulae;
        ] );
      ( "obliviousness",
        [
          Alcotest.test_case "sampled variance" `Quick test_variance_detection;
          Alcotest.test_case "exhaustive variance" `Quick test_variance_exhaustive;
        ] );
      ( "randomised",
        [
          Alcotest.test_case "run" `Quick test_randomized_run;
          Alcotest.test_case "geometric fuel" `Quick test_geometric_and_fuel;
        ] );
      ( "models",
        [
          Alcotest.test_case "order invariance" `Quick test_order_invariant_wrapping;
          Alcotest.test_case "port numbering" `Quick test_po_model;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "engine (max flooding)" `Quick test_protocol_engine;
          Alcotest.test_case "Cole-Vishkin colours cycles" `Quick test_cole_vishkin_small;
          Alcotest.test_case "magnitude-independence" `Quick test_cole_vishkin_huge_ids;
          Alcotest.test_case "log* flatness" `Quick test_cole_vishkin_log_star_flat;
          Alcotest.test_case "Luby MIS" `Quick test_luby_mis;
          QCheck_alcotest.to_alcotest prop_luby_mis_random;
        ] );
      ( "view-trees",
        [
          Alcotest.test_case "shape" `Quick test_view_tree_shape;
          Alcotest.test_case "cycle symmetry" `Quick test_view_tree_cycle_symmetry;
          Alcotest.test_case "path classes" `Quick test_view_tree_path_classes;
          Alcotest.test_case "stable depth" `Quick test_stable_depth;
          Alcotest.test_case "labels matter" `Quick test_view_tree_labels_matter;
          QCheck_alcotest.to_alcotest prop_ball_iso_implies_view_tree_equal;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_engines_agree ]);
    ]
