(* Cross-backend battery for the asynchronous message-passing backend:
   view-level and output-level identity with the synchronous simulator,
   digest equality over every quick-bench workload and every driver at
   several scheduler seeds and job counts, the adversarial scheduler's
   determinism and reordering properties, fault-degradation parity with
   the synchronous fault engine, and the observational transparency of
   tracing over the async hot path. *)

open Locald_graph
open Locald_runtime
open Locald_local
open Locald_decision
open Locald_turing
open Locald_core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let config ?(fifo = false) sched_seed = { Async_runner.sched_seed; fifo }

let rng () = Random.State.make [| 0xa5 |]

(* The same everything-sensitive algorithm the runner and fault tests
   use: any change to the view representation or the id decoration
   changes the output. *)
let fingerprint_algorithm ~radius =
  Algorithm.make ~name:"fingerprint" ~radius (fun view ->
      let ids = match View.ids view with Some ids -> ids | None -> [||] in
      let pairs =
        Array.to_list (Array.mapi (fun v id -> (id, view.View.labels.(v))) ids)
      in
      Hashtbl.hash (List.sort compare pairs, Graph.size view.View.graph))

let test_graphs =
  [ Gen.cycle 7; Gen.grid 3 4; Gen.complete_binary_tree 3; Gen.star 6;
    Gen.path 5 ]

let scheduler_configs =
  [ config 0; config 1; config ~fifo:true 42; config ~fifo:true 7 ]

(* ------------------------------------------------------------------ *)
(* View-level identity: the protocol assembles the exact views          *)
(* ------------------------------------------------------------------ *)

(* Not merely isomorphic views — representation-identical (view, ball
   map) pairs. This is what makes the async [Runner.prepare] a drop-in
   for the synchronous one: memo keys, quotient scans and digests all
   read the concrete representation. *)
let test_assembled_views_identical () =
  List.iter
    (fun g ->
      let lg = Labelled.init g (fun v -> v mod 3) in
      List.iter
        (fun radius ->
          List.iter
            (fun cfg ->
              let assembled = Async_runner.assemble_views ~config:cfg ~radius lg in
              Array.iteri
                (fun v (view, back) ->
                  let sview, sback = View.extract_mapped lg ~center:v ~radius in
                  check bool "view representation identical" true
                    (View.equal_repr ( = ) view sview);
                  check (Alcotest.array int) "ball map identical" sback back)
                assembled)
            scheduler_configs)
        [ 0; 1; 2 ])
    test_graphs

let test_run_outputs_identical () =
  List.iter
    (fun g ->
      let lg = Labelled.init g (fun v -> v mod 4) in
      let n = Labelled.order lg in
      let ids = Ids.shuffled (rng ()) n in
      List.iter
        (fun radius ->
          let alg = fingerprint_algorithm ~radius in
          let expected = Runner.run ~backend:Backend.Sync alg lg ~ids in
          List.iter
            (fun cfg ->
              let got = Async_runner.run ~config:cfg alg lg ~ids in
              check (Alcotest.array int) "async run = sync run" expected got)
            scheduler_configs)
        [ 1; 2 ])
    test_graphs

(* ------------------------------------------------------------------ *)
(* Backend selection                                                    *)
(* ------------------------------------------------------------------ *)

let test_backend_parsing () =
  check bool "sync parses" true (Backend.of_string "sync" = Some Backend.Sync);
  check bool "async parses" true
    (Backend.of_string " Async " = Some (Backend.Async Async_runner.default_config));
  check bool "garbage rejected" true (Backend.of_string "quantum" = None);
  let saved = Backend.default () in
  let inside =
    Backend.with_default (Backend.Async (config 9)) (fun () -> Backend.default ())
  in
  check bool "with_default installs" true (inside = Backend.Async (config 9));
  check bool "with_default restores" true (Backend.default () = saved);
  (try
     ignore
       (Backend.with_default (Backend.Async (config 9)) (fun () -> failwith "x"))
   with Failure _ -> ());
  check bool "with_default restores on raise" true (Backend.default () = saved)

(* ------------------------------------------------------------------ *)
(* Digest battery: every quick-bench workload, sync vs async            *)
(* ------------------------------------------------------------------ *)

let digest x = Digest.to_hex (Digest.string (Marshal.to_string x []))
let seed = 42

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let regime = Ids.f_linear_plus 1
let tree_params = { Tree_instances.regime; arity = 2; r = 1 }
let big_tree = lazy (Tree_instances.big_tree tree_params)
let gmr_config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }

let gmr_instance =
  lazy
    (match
       Gmr.build ~config:gmr_config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1)
     with
    | Ok t -> t
    | Error _ -> assert false)

let certify_summary (report : Locald_analysis.Analysis.report) =
  let open Locald_analysis.Analysis in
  digest
    ( verdict_name report.rep_verdict,
      report.rep_views,
      report.rep_events,
      report.rep_max_depth )

(* The same workloads [bench/main.ml] pins in BENCH_quick.json — the
   committed sync digests stay authoritative; here each workload only
   has to agree with itself across backends, seeds and job counts. *)
let workloads =
  [
    ( "f1-coverage",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let c = Tree_deciders.coverage p ~t:2 in
        digest
          ( c.Tree_deciders.covered,
            c.Tree_deciders.total_views,
            c.Tree_deciders.uncovered_node ) );
    ( "exhaustive-decider",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let lg = Tree_instances.small_instance p ~apex:(0, 1) in
        let n = Labelled.order lg in
        let e =
          Decider.evaluate_exhaustive ~bound:n (Tree_deciders.p_decider p)
            ~expected:true ~instance:"H+" lg
        in
        digest (e.Decider.correct, e.Decider.wrong, e.Decider.assignments) );
    ("p3-coverage", fun () -> digest (Experiments.p3 ~quick:true ()));
    ("corollary1", fun () -> digest (Experiments.corollary1 ()));
    ( "certify-tree",
      fun () ->
        certify_summary
          (Locald_analysis.Analysis.certify
             (Tree_deciders.p_decider tree_params)
             ~instances:[ ("T_r", Lazy.force big_tree) ]) );
    ( "certify-gmr",
      fun () ->
        let t = Lazy.force gmr_instance in
        certify_summary
          (Locald_analysis.Analysis.certify (Gmr_deciders.ld_decider ())
             ~instances:[ ("G(M,1)", t.Gmr.lg) ]) );
  ]

(* >= 8 scheduler seeds per workload, alternating job counts and FIFO
   modes: the backend, the adversary and the pool must all be
   observationally inert, separately and combined. *)
let async_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_workload_cross_backend (name, work) () =
  let baseline = Backend.with_default Backend.Sync (fun () -> with_jobs 1 work) in
  let sync4 = Backend.with_default Backend.Sync (fun () -> with_jobs 4 work) in
  check string (name ^ ": sync jobs=4 = sync jobs=1") baseline sync4;
  List.iter
    (fun s ->
      let jobs = if s mod 2 = 0 then 1 else 4 in
      let cfg = config ~fifo:(s mod 3 = 0) s in
      let d =
        Backend.with_default (Backend.Async cfg) (fun () -> with_jobs jobs work)
      in
      check string
        (Printf.sprintf "%s: async seed=%d%s jobs=%d = sync" name s
           (if cfg.Async_runner.fifo then " fifo" else "")
           jobs)
        baseline d)
    async_seeds

(* ------------------------------------------------------------------ *)
(* Digest battery: every experiment driver, sync vs async               *)
(* ------------------------------------------------------------------ *)

let drivers : (string * (unit -> string)) list =
  [
    ("table1", fun () -> digest (Experiments.table1 ~quick:true ~seed ()));
    ("fig1", fun () -> digest (Experiments.fig1 ~quick:true ()));
    ("fig2", fun () -> digest (Experiments.fig2 ~quick:true ()));
    ("fig3", fun () -> digest (Experiments.fig3 ~quick:true ()));
    ("corollary1", fun () -> digest (Experiments.corollary1 ~quick:true ~seed ()));
    ("p3", fun () -> digest (Experiments.p3 ~quick:true ()));
    ("fuel_diagonal", fun () -> digest (Experiments.fuel_diagonal ~quick:true ()));
    ("construction", fun () -> digest (Experiments.construction ~quick:true ~seed ()));
    ( "order_invariance",
      fun () -> digest (Experiments.order_invariance ~quick:true ~seed ()) );
    ("hereditary", fun () -> digest (Experiments.hereditary ~quick:true ~seed ()));
    ("warmups", fun () -> digest (Experiments.warmups ~quick:true ~seed ()));
    (* The fault grid always runs on the synchronous fault engine; under
       an ambient async backend its digest must be untouched. *)
    ("faults", fun () -> digest (Experiments.faults ~quick:true ~seed ()));
  ]

let test_driver_cross_backend (name, run) () =
  let baseline = Backend.with_default Backend.Sync (fun () -> with_jobs 1 run) in
  List.iter
    (fun (s, jobs) ->
      let d =
        Backend.with_default
          (Backend.Async (config ~fifo:(s mod 2 = 1) s))
          (fun () -> with_jobs jobs run)
      in
      check string
        (Printf.sprintf "%s: async seed=%d jobs=%d = sync" name s jobs)
        baseline d)
    [ (3, 1); (11, 4) ]

(* ------------------------------------------------------------------ *)
(* Scheduler properties                                                 *)
(* ------------------------------------------------------------------ *)

(* Same seed => the whole observable execution replays: every event in
   order, every outcome, every meter. *)
let prop_replay_deterministic =
  QCheck2.Test.make ~name:"same scheduler seed replays the identical trace"
    ~count:40
    QCheck2.Gen.(
      quad (int_range 3 12) (int_bound 1_000_000) (int_bound 1000) bool)
    (fun (n, gseed, sched_seed, fifo) ->
      let rng = Random.State.make [| gseed |] in
      let g = Gen.random_connected rng ~n ~p:0.3 in
      let lg = Labelled.init g (fun v -> (v * 7) mod 3) in
      let ids = Ids.shuffled rng n in
      let alg = fingerprint_algorithm ~radius:2 in
      let plan =
        Faults.make ~seed:gseed ~drop:0.2 ~duplicate:0.1
          ~crashes:[ (Random.State.int rng n, 1 + Random.State.int rng 2) ]
          ()
      in
      let run () =
        Async_runner.run_trace ~config:(config ~fifo sched_seed) ~plan alg lg
          ~ids
      in
      let o1, s1, e1 = run () in
      let o2, s2, e2 = run () in
      o1 = o2 && s1 = s2 && e1 = e2)

let delivery_order cfg =
  let lg = Labelled.init (Gen.cycle 3) (fun v -> v) in
  let ids = Ids.sequential 3 in
  let _, _, events =
    Async_runner.run_trace ~config:cfg ~plan:Faults.empty
      (fingerprint_algorithm ~radius:1) lg ~ids
  in
  List.filter_map
    (function Async_runner.Deliver { uid; _ } -> Some uid | _ -> None)
    events

(* An adversary that cannot reorder is no adversary: on a triangle,
   eight seeds must produce at least two genuinely different delivery
   interleavings (in practice they produce many more). *)
let test_seeds_explore_interleavings () =
  let orders = List.map (fun s -> delivery_order (config s)) async_seeds in
  let distinct =
    List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) []
      orders
  in
  check bool
    (Printf.sprintf "distinct interleavings (%d/8)" (List.length distinct))
    true
    (List.length distinct >= 2);
  (* ... and each of them is a pure function of the seed. *)
  List.iteri
    (fun i o ->
      check (Alcotest.list int) "seed replays its order" o
        (delivery_order (config i)))
    orders

(* FIFO mode: the adversary still interleaves across links, but within
   one directed link deliveries come in send (uid) order. *)
let prop_fifo_preserves_link_order =
  QCheck2.Test.make ~name:"FIFO mode delivers each link in send order"
    ~count:40
    QCheck2.Gen.(triple (int_range 3 12) (int_bound 1_000_000) (int_bound 1000))
    (fun (n, gseed, sched_seed) ->
      let rng = Random.State.make [| gseed |] in
      let g = Gen.random_connected rng ~n ~p:0.3 in
      let lg = Labelled.init g (fun v -> v mod 2) in
      let ids = Ids.shuffled rng n in
      let plan = Faults.make ~seed:gseed ~drop:0.15 () in
      let _, _, events =
        Async_runner.run_trace ~config:(config ~fifo:true sched_seed) ~plan
          (fingerprint_algorithm ~radius:2) lg ~ids
      in
      let last : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
      List.for_all
        (function
          | Async_runner.Deliver { uid; src; dst; _ } ->
              let ok =
                match Hashtbl.find_opt last (src, dst) with
                | Some prev -> prev < uid
                | None -> true
              in
              Hashtbl.replace last (src, dst) uid;
              ok
          | _ -> true)
        events)

(* ------------------------------------------------------------------ *)
(* Faults under the async engine                                        *)
(* ------------------------------------------------------------------ *)

let to_verdict_outcome = function
  | Outcome.Decided b -> Verdict.Outcome.of_bool b
  | Outcome.Unknown _ -> Verdict.Outcome.Unknown

let degraded_of outcomes =
  Verdict.of_outcomes (Array.map to_verdict_outcome outcomes)

(* A boolean decider with the same sensitivity as the fingerprint. *)
let parity_algorithm ~radius =
  Algorithm.make ~name:"parity" ~radius (fun view ->
      let ids = match View.ids view with Some ids -> ids | None -> [||] in
      Array.fold_left ( + ) 0 ids mod 2 = 0)

(* On plans whose degradation is deterministic (everything lost, a
   pre-send crash, duplicates only, nothing at all) both engines must
   produce the same three-valued aggregate and the same crashed set —
   the async engine degrades exactly like the synchronous one. *)
let test_fault_aggregation_parity () =
  let scenarios =
    [
      ("empty plan", Gen.grid 3 3, Faults.empty);
      ("total loss", Gen.cycle 6, Faults.make ~drop:1.0 ());
      ("hub crash", Gen.star 5, Faults.make ~crashes:[ (0, 1) ] ());
      ("duplicates", Gen.grid 3 3, Faults.make ~seed:5 ~duplicate:1.0 ());
      ( "crash + retries",
        Gen.cycle 6,
        Faults.make ~crashes:[ (2, 1) ] ~retries:1 () );
    ]
  in
  List.iter
    (fun (label, g, plan) ->
      let lg = Labelled.init g (fun v -> v mod 2) in
      let n = Labelled.order lg in
      let ids = Ids.shuffled (rng ()) n in
      let alg = parity_algorithm ~radius:1 in
      let sync_out, _ = Fault_runner.run ~plan alg lg ~ids in
      List.iter
        (fun cfg ->
          let async_out, _ =
            Async_runner.run_outcomes ~config:cfg ~plan alg lg ~ids
          in
          let s = degraded_of sync_out and a = degraded_of async_out in
          check bool (label ^ ": verdict agrees") true
            (s.Verdict.verdict = a.Verdict.verdict);
          check (Alcotest.list int) (label ^ ": unknown set agrees")
            s.Verdict.unknowns a.Verdict.unknowns;
          check (Alcotest.array bool) (label ^ ": crashed set agrees")
            (Array.map
               (function Outcome.Unknown Outcome.Crashed -> true | _ -> false)
               sync_out)
            (Array.map
               (function Outcome.Unknown Outcome.Crashed -> true | _ -> false)
               async_out))
        scheduler_configs)
    scenarios

(* Crash-stop isolation, stated over the trace: once the Crash event
   fires, not a single message from that node is delivered — pending
   ones are withdrawn (purged), not flushed. *)
let crash_isolated events =
  let crashed = Hashtbl.create 4 in
  List.for_all
    (function
      | Async_runner.Crash { node; _ } ->
          Hashtbl.replace crashed node ();
          true
      | Async_runner.Deliver { src; _ } -> not (Hashtbl.mem crashed src)
      | _ -> true)
    events

let test_crash_never_delivers_after_crash () =
  (* Crash at the second send opportunity: the first batch is already
     in flight when the crash fires, so withdrawal is actually
     exercised (mid-flight, not before-first-send). *)
  let lg = Labelled.init (Gen.star 5) (fun v -> v mod 2) in
  let ids = Ids.sequential (Labelled.order lg) in
  let plan = Faults.make ~crashes:[ (0, 2) ] () in
  List.iter
    (fun cfg ->
      let _, stats, events =
        Async_runner.run_trace ~config:cfg ~plan
          (fingerprint_algorithm ~radius:2) lg ~ids
      in
      check bool "no delivery from a crashed node" true (crash_isolated events);
      check bool "the crash actually fired" true
        (List.exists
           (function Async_runner.Crash { node = 0; _ } -> true | _ -> false)
           events);
      check bool "withdrawal exercised" true (stats.Async_runner.purged > 0))
    scheduler_configs

let prop_crash_isolation =
  QCheck2.Test.make ~name:"a crashed node never delivers after its crash"
    ~count:40
    QCheck2.Gen.(triple (int_range 3 12) (int_bound 1_000_000) (int_bound 1000))
    (fun (n, gseed, sched_seed) ->
      let rng = Random.State.make [| gseed |] in
      let g = Gen.random_connected rng ~n ~p:0.3 in
      let lg = Labelled.init g (fun v -> v mod 3) in
      let ids = Ids.shuffled rng n in
      let plan =
        Faults.make ~seed:gseed ~drop:0.1
          ~crashes:[ (Random.State.int rng n, 1 + Random.State.int rng 3) ]
          ()
      in
      let _, _, events =
        Async_runner.run_trace
          ~config:(config ~fifo:(gseed mod 2 = 0) sched_seed)
          ~plan
          (fingerprint_algorithm ~radius:2)
          lg ~ids
      in
      crash_isolated events)

(* Same soundness contract as the synchronous fault engine: whatever a
   fault plan and an adversarial schedule do, a Decided output equals
   the fault-free output. *)
let prop_async_decided_outputs_sound =
  QCheck2.Test.make
    ~name:"async Decided outputs equal the fault-free outputs" ~count:60
    QCheck2.Gen.(
      quad (int_range 3 14) (int_bound 1_000_000) (int_bound 1000) (int_bound 2))
    (fun (n, gseed, sched_seed, radius) ->
      let rng = Random.State.make [| gseed |] in
      let g = Gen.random_connected rng ~n ~p:0.3 in
      let lg = Labelled.init g (fun v -> (v * 5) mod 3) in
      let ids = Ids.shuffled rng n in
      let alg = fingerprint_algorithm ~radius in
      let expected = Runner.run ~backend:Backend.Sync alg lg ~ids in
      let plan =
        Faults.make ~seed:gseed ~drop:0.25 ~duplicate:0.1
          ~crashes:[ (Random.State.int rng n, 1 + Random.State.int rng 2) ]
          ~retries:(Random.State.int rng 2) ()
      in
      let outcomes, _ =
        Async_runner.run_outcomes
          ~config:(config ~fifo:(gseed mod 2 = 1) sched_seed)
          ~plan alg lg ~ids
      in
      Array.for_all2
        (fun o e ->
          match o with Outcome.Decided d -> d = e | Outcome.Unknown _ -> true)
        outcomes expected)

(* ------------------------------------------------------------------ *)
(* Telemetry transparency on the async hot path                         *)
(* ------------------------------------------------------------------ *)

(* The sched.step span sits inside the scheduler's innermost loop: with
   tracing off it must be a no-op (same digest), with tracing on it
   must actually appear in the sink. *)
let test_trace_transparent () =
  let _, work = List.nth workloads 1 (* exhaustive-decider *) in
  let backend = Backend.Async (config 5) in
  let plain = Backend.with_default backend work in
  let path = Filename.temp_file "locald_async_trace" ".jsonl" in
  let traced =
    Backend.with_default backend (fun () ->
        Telemetry.open_sink path;
        Fun.protect ~finally:(fun () -> Telemetry.close_sink ()) work)
  in
  let ic = open_in path in
  let saw_sched = ref false in
  (try
     while true do
       let line = input_line ic in
       let is_sub i =
         i + 10 <= String.length line && String.sub line i 10 = "sched.step"
       in
       for i = 0 to String.length line - 10 do
         if is_sub i then saw_sched := true
       done
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  check string "digest with tracing = digest without" plain traced;
  check bool "sched.step spans reached the sink" true !saw_sched

(* ------------------------------------------------------------------ *)
(* The prepare hoist holds on the async path too                        *)
(* ------------------------------------------------------------------ *)

let test_async_prepare_extraction_pin () =
  let p = { Tree_instances.regime; arity = 2; r = 1 } in
  let lg = Tree_instances.small_instance p ~apex:(0, 1) in
  let n = Labelled.order lg in
  let alg = Tree_deciders.p_decider p in
  let before = View.extraction_count () in
  let prep = Runner.prepare ~backend:(Backend.Async (config 3)) alg lg in
  let after_prepare = View.extraction_count () in
  check int "async prepare extracts once per node" n (after_prepare - before);
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 10 do
    let ids = Ids.sample rng regime ~n in
    let fast = Runner.run_prepared prep ~ids in
    let slow = Runner.run ~backend:Backend.Sync alg lg ~ids in
    check (Alcotest.array bool) "async-prepared = sync run" slow fast
  done;
  (* The 10 assignments cost 10 * n extractions on the direct sync
     comparison path and none on the async-prepared path. *)
  check int "per-assignment work extracts no views" (10 * n)
    (View.extraction_count () - after_prepare)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "async"
    [
      ( "identity",
        [
          Alcotest.test_case "assembled views = extracted views" `Quick
            test_assembled_views_identical;
          Alcotest.test_case "run outputs = sync outputs" `Quick
            test_run_outputs_identical;
          Alcotest.test_case "backend parsing and scoping" `Quick
            test_backend_parsing;
          Alcotest.test_case "prepare hoist pins" `Quick
            test_async_prepare_extraction_pin;
        ] );
      ( "battery-workloads",
        List.map
          (fun ((name, _) as w) ->
            Alcotest.test_case
              (Printf.sprintf "%s byte-identical across backends" name)
              `Quick (test_workload_cross_backend w))
          workloads );
      ( "battery-drivers",
        List.map
          (fun ((name, _) as d) ->
            Alcotest.test_case
              (Printf.sprintf "%s byte-identical across backends" name)
              `Quick (test_driver_cross_backend d))
          drivers );
      ( "scheduler",
        [
          QCheck_alcotest.to_alcotest prop_replay_deterministic;
          Alcotest.test_case "seeds explore interleavings" `Quick
            test_seeds_explore_interleavings;
          QCheck_alcotest.to_alcotest prop_fifo_preserves_link_order;
        ] );
      ( "faults",
        [
          Alcotest.test_case "degraded aggregation parity" `Quick
            test_fault_aggregation_parity;
          Alcotest.test_case "mid-flight crash-stop isolation" `Quick
            test_crash_never_delivers_after_crash;
          QCheck_alcotest.to_alcotest prop_crash_isolation;
          QCheck_alcotest.to_alcotest prop_async_decided_outputs_sound;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "tracing is observationally inert" `Quick
            test_trace_transparent;
        ] );
    ]
