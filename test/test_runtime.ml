(* The parallel runtime: pool semantics, canonical view keys, the
   decider's view hoist, and the determinism contract — every
   experiment driver must produce byte-identical results at any job
   count and across repeated runs with a fixed seed. *)

open Locald_graph
open Locald_local
open Locald_core
open Locald_runtime

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A shared explicit pool so the unit tests exercise the genuinely
   parallel path regardless of how the default pool is sized. *)
let pool = lazy (Pool.create ~jobs:3)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  let pool = Lazy.force pool in
  let f x = (x * x) + 1 in
  List.iter
    (fun n ->
      let xs = Array.init n (fun i -> (i * 7) mod 23) in
      check
        (Alcotest.array int)
        (Printf.sprintf "map = Array.map at n=%d" n)
        (Array.map f xs)
        (Pool.map ~pool f xs))
    [ 0; 1; 2; 3; 17; 100; 1000 ]

let test_map_list () =
  let pool = Lazy.force pool in
  let xs = List.init 257 Fun.id in
  check (Alcotest.list int) "map_list = List.map"
    (List.map (fun x -> 3 * x) xs)
    (Pool.map_list ~pool (fun x -> 3 * x) xs)

let test_map_reduce () =
  let pool = Lazy.force pool in
  let xs = Array.init 500 Fun.id in
  check int "map_reduce sums squares"
    (Array.fold_left (fun acc x -> acc + (x * x)) 0 xs)
    (Pool.map_reduce ~pool ~f:(fun x -> x * x) ~combine:( + ) ~init:0 xs)

let test_exception_propagation () =
  let pool = Lazy.force pool in
  let f x = if x = 13 then failwith "unlucky" else x in
  (match Pool.map ~pool f (Array.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Failure to propagate to the caller"
  | exception Failure msg -> check Alcotest.string "message" "unlucky" msg);
  (* The pool must remain usable after a failed fan-out. *)
  check
    (Alcotest.array int)
    "pool reusable after exception"
    (Array.init 100 (fun i -> i + 1))
    (Pool.map ~pool (fun x -> x + 1) (Array.init 100 Fun.id))

let test_nested_map () =
  let pool = Lazy.force pool in
  (* A map issued from inside a worker takes the sequential path
     instead of deadlocking on the shared queue. *)
  (* Above the small-fan-out sequential threshold, so the outer map
     really runs on the workers and the inner maps exercise the
     inside-a-worker sequential fallback. *)
  let rows = Array.init 40 (fun i -> Array.init 50 (fun j -> i + j)) in
  let sums =
    Pool.map ~pool
      (fun row -> Array.fold_left ( + ) 0 (Pool.map ~pool (fun x -> 2 * x) row))
      rows
  in
  check
    (Alcotest.array int)
    "nested maps compute correctly"
    (Array.map
       (fun row -> Array.fold_left (fun acc x -> acc + (2 * x)) 0 row)
       rows)
    sums

let test_init_in_order () =
  let trace = ref [] in
  let a =
    Pool.init_in_order 10 (fun i ->
        trace := i :: !trace;
        i * 3)
  in
  check (Alcotest.list int) "ascending evaluation order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !trace);
  check (Alcotest.array int) "values" (Array.init 10 (fun i -> i * 3)) a

let test_split_seeds () =
  let expected =
    let rng = Random.State.make [| 99 |] in
    Array.init 32 (fun _ -> Random.State.bits rng)
  in
  let rng = Random.State.make [| 99 |] in
  check (Alcotest.array int) "split_seeds = sequential bits draws" expected
    (Pool.split_seeds rng 32)

(* ------------------------------------------------------------------ *)
(* Canonical view keys                                                 *)
(* ------------------------------------------------------------------ *)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let random_perm rng n = shuffle rng (Array.init n Fun.id)

let arbitrary_labelled =
  QCheck2.Gen.(
    let* n = int_range 3 16 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let g = Gen.random_connected rng ~n ~p:0.25 in
    let labels = Array.init n (fun _ -> Random.State.int rng 3) in
    return (Labelled.make g labels, seed))

let prop_fingerprint_is_view_signature =
  QCheck2.Test.make ~name:"Canon fingerprint = Iso.view_signature" ~count:60
    arbitrary_labelled (fun (lg, seed) ->
      let canon = Canon.create ~equal:( = ) () in
      let rng = Random.State.make [| seed + 1 |] in
      let v = Random.State.int rng (Labelled.order lg) in
      let view = View.extract lg ~center:v ~radius:2 in
      Canon.fingerprint (Canon.key canon view)
      = Iso.view_signature Hashtbl.hash view)

let prop_relabelling_invariance =
  QCheck2.Test.make
    ~name:"iso-equivalent views: equal fingerprints, equivalent keys" ~count:60
    arbitrary_labelled (fun (lg, seed) ->
      let canon = Canon.create ~equal:( = ) () in
      let rng = Random.State.make [| seed + 2 |] in
      let n = Labelled.order lg in
      let perm = random_perm rng n in
      let lh = Labelled.relabel_nodes lg perm in
      let v = Random.State.int rng n in
      let va = View.extract lg ~center:v ~radius:2 in
      let vb = View.extract lh ~center:perm.(v) ~radius:2 in
      let ka = Canon.key canon va and kb = Canon.key canon vb in
      Canon.fingerprint ka = Canon.fingerprint kb
      && Canon.equivalent canon ka kb
      && Canon.isomorphic canon va vb)

let prop_agrees_with_backtracking =
  QCheck2.Test.make ~name:"Canon.isomorphic = Iso.views_isomorphic" ~count:60
    arbitrary_labelled (fun (lg, seed) ->
      let canon = Canon.create ~equal:( = ) () in
      let rng = Random.State.make [| seed + 3 |] in
      let n = Labelled.order lg in
      let a = Random.State.int rng n and b = Random.State.int rng n in
      let va = View.extract lg ~center:a ~radius:1 in
      let vb = View.extract lg ~center:b ~radius:1 in
      Canon.isomorphic canon va vb = Iso.views_isomorphic ( = ) va vb)

let prop_cache_transparent =
  QCheck2.Test.make ~name:"cache on = cache off" ~count:40 arbitrary_labelled
    (fun (lg, seed) ->
      let cached = Canon.create ~cache:true ~equal:( = ) () in
      let raw = Canon.create ~cache:false ~equal:( = ) () in
      let rng = Random.State.make [| seed + 4 |] in
      let n = Labelled.order lg in
      let views =
        List.init 6 (fun _ ->
            View.extract lg ~center:(Random.State.int rng n) ~radius:1)
      in
      (* Key every view twice through the cached table (forcing memo
         hits), then compare every pair's verdict against the uncached
         table. *)
      List.iter (fun v -> ignore (Canon.key cached v)) views;
      List.for_all
        (fun va ->
          List.for_all
            (fun vb ->
              Canon.equivalent cached (Canon.key cached va)
                (Canon.key cached vb)
              = Canon.equivalent raw (Canon.key raw va) (Canon.key raw vb))
            views)
        views)

(* ------------------------------------------------------------------ *)
(* Orbit enumeration and decide-once keys                              *)
(* ------------------------------------------------------------------ *)

let test_orbit_enumeration () =
  let bound = 5 and k = 3 in
  let via_orbit = List.of_seq (Orbit.injections ~bound ~k) in
  check int "count = perm" (Orbit.perm ~bound ~k) (List.length via_orbit);
  let via_ids =
    Ids.enumerate_injections ~n:k ~bound |> Seq.map Ids.to_array |> List.of_seq
  in
  check bool "same order as Ids.enumerate_injections" true
    (List.for_all2 ( = ) via_orbit via_ids);
  (* The imperative scan visits the same restrictions in the same
     order (through a reused scratch buffer). *)
  let seen = ref [] in
  check bool "scan completes" true
    (Orbit.for_all_injections ~bound ~k (fun r ->
         seen := Array.copy r :: !seen;
         true));
  check bool "scan = lazy enumeration" true (List.rev !seen = via_orbit);
  let count = ref 0 in
  check bool "scan stops on first false" false
    (Orbit.for_all_injections ~bound ~k (fun _ ->
         incr count;
         !count < 3));
  check int "stopped early" 3 !count;
  check bool "vacuous when k > bound" true
    (Orbit.for_all_injections ~bound:2 ~k:3 (fun _ -> false))

let test_orbit_extend () =
  let n = 5 and bound = 7 in
  let back = [| 1; 3; 4 |] in
  let r = [| 6; 0; 2 |] in
  let ids = Orbit.extend ~n ~bound ~back r in
  check int "length" n (Array.length ids);
  Array.iteri
    (fun i b -> check int "restriction preserved" r.(i) ids.(b))
    back;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      check bool "id in range" true (x >= 0 && x < bound);
      check bool "id fresh" false (Hashtbl.mem seen x);
      Hashtbl.replace seen x ())
    ids

(* An id-reading pure decide for the scanner and key properties:
   value- and position-sensitive, so only exact keys are sound. *)
let parity_alg m =
  Algorithm.make ~name:"parity" ~radius:1 (fun view ->
      let acc = ref (View.center_id view) in
      for u = 0 to View.order view - 1 do
        acc := !acc + ((View.label view u + 1) * (View.id view u + 1))
      done;
      !acc mod m = 0)

let prop_scanner_agrees =
  QCheck2.Test.make ~name:"restriction scanner = direct decide" ~count:40
    arbitrary_labelled (fun (lg, _seed) ->
      let alg = parity_alg 3 in
      let prep = Runner.prepare alg lg in
      let n = Labelled.order lg in
      (* Scan the smallest ball: perm (k+2) k grows factorially, and the
         agreement being tested is per-node, not per-graph. *)
      let v = ref 0 in
      for u = 1 to n - 1 do
        if
          Array.length (Runner.ball_of prep u)
          < Array.length (Runner.ball_of prep !v)
        then v := u
      done;
      let v = !v in
      let k = Array.length (Runner.ball_of prep v) in
      let scan = Runner.restriction_scanner prep v in
      let bound = k + 2 in
      QCheck2.assume (Orbit.perm ~bound ~k <= 20_000);
      Orbit.for_all_injections ~bound ~k (fun r ->
          scan r
          = Runner.decide_restricted ~memoise:false prep v (Array.copy r)))

let prop_decorated_key_hash =
  QCheck2.Test.make ~name:"decorated keys: equal => hash-equal" ~count:200
    QCheck2.Gen.(pair (int_bound 50) (list_size (int_bound 8) (int_bound 100)))
    (fun (node, ids) ->
      let a = (node, Array.of_list ids) in
      let b = (node, Array.of_list ids) in
      Memo.equal_node_ids a b && Memo.hash_node_ids a = Memo.hash_node_ids b)

let prop_decorated_view_keys =
  QCheck2.Test.make
    ~name:"decorated views: equal_repr => equal fingerprints and keys"
    ~count:40 arbitrary_labelled (fun (lg, seed) ->
      let rng = Random.State.make [| seed + 11 |] in
      let n = Labelled.order lg in
      let v = Random.State.int rng n in
      let view, back = View.extract_mapped lg ~center:v ~radius:1 in
      let k = Array.length back in
      let r = Array.init k (fun _ -> Random.State.int rng 10) in
      let decorate view = View.mapi_labels (fun i x -> (x, r.(i))) view in
      let da = decorate view and db = decorate view in
      let eq (xa, ia) (xb, ib) = xa = xb && ia = ib in
      let lh (x, i) = Hashtbl.hash (x, i) in
      View.equal_repr eq da db
      && View.fingerprint lh da = View.fingerprint lh db
      &&
      let dc = Canon.decorated (Canon.create ~equal:( = ) ()) in
      let ka = Canon.key dc da and kb = Canon.key dc db in
      Canon.fingerprint ka = Canon.fingerprint kb && Canon.equivalent dc ka kb)

let test_canon_memo_hits () =
  let canon = Canon.create ~equal:( = ) () in
  let lg = Labelled.init (Gen.grid 4 4) (fun v -> v mod 2) in
  for _ = 1 to 3 do
    ignore (Canon.key canon (View.extract lg ~center:5 ~radius:2))
  done;
  let s = Canon.stats canon in
  check int "memo hits recorded" 2 s.Canon.hits;
  check int "single canonicalisation" 1 s.Canon.misses

(* ------------------------------------------------------------------ *)
(* The decider hoist: per-assignment work extracts no views            *)
(* ------------------------------------------------------------------ *)

let test_prepared_runner_no_extraction () =
  let regime = Ids.f_linear_plus 1 in
  let p = { Tree_instances.regime; arity = 2; r = 1 } in
  let lg = Tree_instances.small_instance p ~apex:(0, 1) in
  let n = Labelled.order lg in
  let alg = Tree_deciders.p_decider p in
  let before = View.extraction_count () in
  let prep = Runner.prepare alg lg in
  let after_prepare = View.extraction_count () in
  check int "prepare extracts once per node" n (after_prepare - before);
  check int "prepared_size" n (Runner.prepared_size prep);
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let ids = Ids.sample rng regime ~n in
    let fast = Runner.run_prepared prep ~ids in
    let slow = Runner.run alg lg ~ids in
    check (Alcotest.array bool) "run_prepared = run" slow fast
  done;
  (* The 20 assignments cost 20 * n extractions on the direct path and
     none on the prepared path — the hoist is what keeps exhaustive
     quantification from re-extracting per assignment. *)
  check int "per-assignment work extracts no views" (20 * n)
    (View.extraction_count () - after_prepare)

(* ------------------------------------------------------------------ *)
(* Determinism battery: every driver, jobs in {1, 2, 4}, repeated      *)
(* ------------------------------------------------------------------ *)

let digest x = Digest.to_hex (Digest.string (Marshal.to_string x []))
let seed = 42

let drivers : (string * (unit -> string)) list =
  [
    ("table1", fun () -> digest (Experiments.table1 ~quick:true ~seed ()));
    ("fig1", fun () -> digest (Experiments.fig1 ~quick:true ()));
    ("fig2", fun () -> digest (Experiments.fig2 ~quick:true ()));
    ("fig3", fun () -> digest (Experiments.fig3 ~quick:true ()));
    ( "corollary1",
      fun () -> digest (Experiments.corollary1 ~quick:true ~seed ()) );
    ("p3", fun () -> digest (Experiments.p3 ~quick:true ()));
    ("fuel_diagonal", fun () -> digest (Experiments.fuel_diagonal ~quick:true ()));
    ( "construction",
      fun () -> digest (Experiments.construction ~quick:true ~seed ()) );
    ( "order_invariance",
      fun () -> digest (Experiments.order_invariance ~quick:true ~seed ()) );
    ( "hereditary",
      fun () -> digest (Experiments.hereditary ~quick:true ~seed ()) );
    ("warmups", fun () -> digest (Experiments.warmups ~quick:true ~seed ()));
    (* Fault injection under a fixed plan seed: the whole scenario grid
       (drops, crashes, fuel budgets, retries) must replay exactly —
       the rows embed the plans, so the digest pins those too. *)
    ("faults", fun () -> digest (Experiments.faults ~quick:true ~seed ()));
  ]

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let test_driver_determinism (name, run) () =
  let d1 = with_jobs 1 run in
  let d2 = with_jobs 2 run in
  let d4 = with_jobs 4 run in
  let d4' = with_jobs 4 run in
  check Alcotest.string (name ^ ": jobs=2 = jobs=1") d1 d2;
  check Alcotest.string (name ^ ": jobs=4 = jobs=1") d1 d4;
  check Alcotest.string (name ^ ": repeated run identical") d4 d4'

(* ------------------------------------------------------------------ *)
(* Golden regression: results pinned at the seed parameters            *)
(* ------------------------------------------------------------------ *)

let test_golden_table1 () =
  let rows = Experiments.table1 ~quick:true () in
  check int "four cells" 4 (List.length rows);
  let rel cell =
    (List.find (fun c -> c.Experiments.cell = cell) rows).Experiments.relation
  in
  (* The paper's separation pattern: identifiers help except when the
     bound is unknowable and the property is non-computable. *)
  check Alcotest.string "(B, C)" "LD* <> LD" (rel "(B, C)");
  check Alcotest.string "(B, notC)" "LD* <> LD" (rel "(B, notC)");
  check Alcotest.string "(notB, C)" "LD* <> LD" (rel "(notB, C)");
  check Alcotest.string "(notB, notC)" "LD* = LD" (rel "(notB, notC)");
  List.iter
    (fun (c : Experiments.cell_result) ->
      check bool (c.cell ^ ": all evidence holds") true
        (List.for_all snd c.evidence))
    rows

let test_golden_fig1 () =
  let shape =
    List.map
      (fun (x : Experiments.fig1_row) ->
        ((x.arity, x.r, x.t), (x.covered, x.total)))
      (Experiments.fig1 ~quick:true ())
  in
  check
    (Alcotest.list
       (Alcotest.pair
          (Alcotest.triple int int int)
          (Alcotest.pair int int)))
    "F1 coverage counts at seed parameters"
    [ ((2, 1, 0), (127, 127)); ((1, 4, 1), (9, 9)); ((1, 1, 1), (2, 6)) ]
    shape

let test_golden_p3 () =
  match Experiments.p3 ~quick:true () with
  | [ row ] ->
      check bool "halts in window" true row.Experiments.halts_in_window;
      check int "G classes" 322 row.Experiments.g_classes;
      check int "B classes" 322 row.Experiments.b_classes;
      check int "G covered by B" 322 row.Experiments.g_covered_by_b;
      check int "B covered by G" 322 row.Experiments.b_covered_by_g
  | rows -> Alcotest.failf "expected one quick P3 row, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fingerprint_is_view_signature;
      prop_relabelling_invariance;
      prop_agrees_with_backtracking;
      prop_cache_transparent;
    ]

let orbit_cases =
  Alcotest.test_case "injection enumeration" `Quick test_orbit_enumeration
  :: Alcotest.test_case "witness extension" `Quick test_orbit_extend
  :: List.map QCheck_alcotest.to_alcotest
       [ prop_scanner_agrees; prop_decorated_key_hash; prop_decorated_view_keys ]

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_sequential;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested maps" `Quick test_nested_map;
          Alcotest.test_case "init_in_order" `Quick test_init_in_order;
          Alcotest.test_case "split_seeds" `Quick test_split_seeds;
        ] );
      ( "canon",
        Alcotest.test_case "memo hits" `Quick test_canon_memo_hits
        :: qcheck_cases );
      ("orbit", orbit_cases);
      ( "hoist",
        [
          Alcotest.test_case "prepared runner extracts no views per assignment"
            `Quick test_prepared_runner_no_extraction;
        ] );
      ( "determinism",
        List.map
          (fun ((name, _) as d) ->
            Alcotest.test_case
              (Printf.sprintf "%s identical at jobs 1/2/4" name)
              `Quick (test_driver_determinism d))
          drivers );
      ( "golden",
        [
          Alcotest.test_case "Table 1 separation pattern" `Quick
            test_golden_table1;
          Alcotest.test_case "F1 coverage counts" `Quick test_golden_fig1;
          Alcotest.test_case "P3 class counts" `Quick test_golden_p3;
        ] );
    ]
