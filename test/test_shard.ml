(* Sharded exhaustive runs: rank unranking, the chunk partition, the
   crash-safe checkpoint format (torn tails, corrupted records, header
   mismatches), kill-and-resume equivalence, and the merge's exactness
   — shard+merge must reproduce the unsharded digest byte-identically
   for any shard count, at any job count, interrupted or not. *)

open Locald_local
open Locald_runtime
open Locald_core

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Unranking                                                           *)
(* ------------------------------------------------------------------ *)

let test_unrank_matches_enumeration () =
  List.iter
    (fun (n, bound) ->
      let all = List.of_seq (Ids.enumerate_injections ~n ~bound) in
      List.iteri
        (fun rank ids ->
          check
            (Alcotest.array int)
            (Printf.sprintf "injection_at %d (n=%d bound=%d)" rank n bound)
            (Ids.to_array ids)
            (Ids.to_array (Ids.injection_at ~n ~bound rank)))
        all;
      check int "total" (List.length all) (Orbit.perm ~bound ~k:n))
    [ (3, 5); (4, 4); (1, 6); (0, 3) ]

let test_enumerate_from_is_suffix () =
  let n = 3 and bound = 5 in
  let all = Array.of_seq (Ids.enumerate_injections ~n ~bound) in
  let total = Array.length all in
  List.iter
    (fun start ->
      let suffix =
        Array.of_seq (Ids.enumerate_injections_from ~n ~bound ~start)
      in
      check int "suffix length" (total - start) (Array.length suffix);
      Array.iteri
        (fun i ids ->
          check (Alcotest.array int) "suffix element"
            (Ids.to_array all.(start + i))
            (Ids.to_array ids))
        suffix)
    [ 0; 1; 17; total - 1; total ]

(* ------------------------------------------------------------------ *)
(* The chunk partition                                                 *)
(* ------------------------------------------------------------------ *)

let plan_tiles_exactly =
  QCheck.Test.make ~name:"plan: chunks tile [0,total), strided ownership"
    ~count:200
    QCheck.(triple (int_bound 5000) (int_range 1 600) (int_range 1 12))
    (fun (total, chunk, shards) ->
      let p = Shard.plan ~total ~chunk ~shards () in
      let chunks = Shard.chunk_count p in
      (* Ranges tile the space in order, without gaps or overlaps. *)
      let pos = ref 0 in
      for c = 0 to chunks - 1 do
        let lo, hi = Shard.range p c in
        if lo <> !pos || hi <= lo || hi > total then
          QCheck.Test.fail_reportf "chunk %d range [%d,%d) at pos %d" c lo hi
            !pos;
        pos := hi
      done;
      if total > 0 && !pos <> total then
        QCheck.Test.fail_reportf "tiling ends at %d, not %d" !pos total;
      (* Every chunk is owned by exactly the strided shard, and the
         per-shard chunk lists partition the chunk indices. *)
      let owned = Array.make chunks false in
      for i = 0 to shards - 1 do
        List.iter
          (fun c ->
            if Shard.owner p c <> i then
              QCheck.Test.fail_reportf "chunk %d listed by non-owner %d" c i;
            if owned.(c) then QCheck.Test.fail_reportf "chunk %d owned twice" c;
            owned.(c) <- true)
          (Shard.chunks_of p ~index:i)
      done;
      Array.for_all Fun.id owned
      &&
      (* ranks_of sums back to the whole space. *)
      List.init shards (fun i -> Shard.ranks_of p ~index:i)
      |> List.fold_left ( + ) 0 = total)

(* ------------------------------------------------------------------ *)
(* Synthetic shard runs: merge arithmetic without a decider            *)
(* ------------------------------------------------------------------ *)

(* A pure arithmetic eval — rank r is "wrong" iff r mod 7 = 3 — so the
   merge's count and first-failure folding is tested independently of
   the decision layer. *)
let synthetic_eval ~lo ~hi =
  let wrong = ref 0 and fail = ref None in
  for r = lo to hi - 1 do
    if r mod 7 = 3 then begin
      incr wrong;
      if !fail = None then fail := Some r
    end
  done;
  { Shard.r_correct = hi - lo - !wrong; r_wrong = !wrong; r_fail = !fail }

let synthetic_expected total =
  let wrong = ref 0 in
  for r = 0 to total - 1 do
    if r mod 7 = 3 then incr wrong
  done;
  (total - !wrong, !wrong)

let run_all_shards ?checkpoint ~workload ~plan () =
  List.init plan.Shard.p_shards (fun i ->
      let s, _ =
        Shard.run ?checkpoint ~workload ~plan ~index:i ~eval:synthetic_eval ()
      in
      (i, s))

let test_merge_synthetic () =
  let total = 1000 in
  List.iter
    (fun shards ->
      let plan = Shard.plan ~total ~chunk:64 ~shards () in
      let summaries = run_all_shards ~workload:"synthetic" ~plan () in
      match Shard.merge ~workload:"synthetic" ~plan ~summaries with
      | Error msg -> Alcotest.failf "merge error: %s" msg
      | Ok (Shard.Incomplete _) -> Alcotest.fail "unexpectedly incomplete"
      | Ok (Shard.Complete { m_correct; m_wrong; m_assignments; m_fail; _ }) ->
          let correct, wrong = synthetic_expected total in
          check int "assignments" total m_assignments;
          check int "correct" correct m_correct;
          check int "wrong" wrong m_wrong;
          check (Alcotest.option int) "first failure" (Some 3) m_fail)
    [ 1; 2; 4; 8; 13 ]

let test_merge_incomplete () =
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:4 () in
  let summaries =
    run_all_shards ~workload:"synthetic" ~plan ()
    |> List.filter (fun (i, _) -> i <> 2)
  in
  match Shard.merge ~workload:"synthetic" ~plan ~summaries with
  | Error msg -> Alcotest.failf "merge error: %s" msg
  | Ok (Shard.Complete _) -> Alcotest.fail "merge fabricated a total"
  | Ok (Shard.Incomplete { mi_missing; mi_covered; mi_assignments; _ }) ->
      check (Alcotest.list int) "missing shards" [ 2 ] mi_missing;
      check int "assignments" 1000 mi_assignments;
      check int "covered" (1000 - Shard.ranks_of plan ~index:2) mi_covered

let test_merge_rejects_foreign_summary () =
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:2 () in
  let summaries = run_all_shards ~workload:"synthetic" ~plan () in
  let poisoned =
    List.map
      (fun (i, s) ->
        if i = 1 then (i, { s with Shard.s_workload = "other" }) else (i, s))
      summaries
  in
  match Shard.merge ~workload:"synthetic" ~plan ~summaries:poisoned with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merge accepted a summary from another workload"

(* ------------------------------------------------------------------ *)
(* Real workload: sharding merges to the unsharded digest              *)
(* ------------------------------------------------------------------ *)

let a1 =
  match Sweeps.find "exhaustive-decider-a1" with
  | Some w -> w
  | None -> assert false

let with_jobs jobs f =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) f

let test_shard_merge_equals_unsharded () =
  let g = a1.Sweeps.w_geometry () in
  let reference = Sweeps.digest (a1.Sweeps.w_unsharded ()) in
  List.iter
    (fun jobs ->
      with_jobs jobs @@ fun () ->
      List.iter
        (fun shards ->
          let plan =
            Shard.plan ~total:g.Sweeps.g_total ~chunk:a1.Sweeps.w_chunk ~shards
              ()
          in
          let eval = a1.Sweeps.w_eval () in
          let summaries =
            List.init shards (fun i ->
                let s, _ =
                  Shard.run ~workload:a1.Sweeps.w_name ~plan ~index:i ~eval ()
                in
                (i, s))
          in
          match Shard.merge ~workload:a1.Sweeps.w_name ~plan ~summaries with
          | Ok (Shard.Complete { m_digest; _ }) ->
              check string
                (Printf.sprintf "digest at shards=%d jobs=%d" shards jobs)
                reference m_digest
          | Ok (Shard.Incomplete _) -> Alcotest.fail "incomplete"
          | Error msg -> Alcotest.failf "merge error: %s" msg)
        [ 1; 2; 4; 8 ])
    [ 1; 4 ]

(* The two registry additions beyond the exhaustive-decider family:
   the Corollary 1 seed curve and the certify-gmr provenance sweep.
   Their merged digests are pinned — a change to the G(M,1)
   construction, the randomised decider's coin usage, or the trace
   monitor shows up here as a digest break, the same contract
   BENCH_quick.json enforces for the tree workloads. *)
let pinned_workloads =
  [
    ("corollary1-curve", "b53164b966c5906154c84dd5233364b1");
    ("certify-gmr", "eae2a273f859df2a33e8d80eefd3d806");
  ]

let test_new_workload_digest_pins () =
  List.iter
    (fun (name, pin) ->
      let w =
        match Sweeps.find name with
        | Some w -> w
        | None -> Alcotest.failf "workload %s not registered" name
      in
      let e = w.Sweeps.w_unsharded () in
      check string
        (Printf.sprintf "%s unsharded digest pin" name)
        pin (Sweeps.digest e);
      check int
        (Printf.sprintf "%s zero wrong" name)
        0 e.Locald_decision.Decider.wrong;
      let g = w.Sweeps.w_geometry () in
      List.iter
        (fun shards ->
          let plan =
            Shard.plan ~total:g.Sweeps.g_total ~chunk:w.Sweeps.w_chunk ~shards
              ()
          in
          let eval = w.Sweeps.w_eval () in
          let summaries =
            List.init shards (fun i ->
                let s, _ =
                  Shard.run ~workload:name ~plan ~index:i ~eval ()
                in
                (i, s))
          in
          match Shard.merge ~workload:name ~plan ~summaries with
          | Ok (Shard.Complete { m_digest; _ }) ->
              check string
                (Printf.sprintf "%s merged digest at shards=%d" name shards)
                pin m_digest
          | Ok (Shard.Incomplete _) -> Alcotest.fail "incomplete"
          | Error msg -> Alcotest.failf "merge error: %s" msg)
        [ 1; 3 ])
    pinned_workloads

(* ------------------------------------------------------------------ *)
(* Checkpoint files: torn tails, corruption, resume                    *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Printf.sprintf "ckpt-test-%d" !dir_counter

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let truncate_file path k =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = min k len in
  let content = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let file_size path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  len

let simulate_crash ~dir ~index ~at =
  (* A crash leaves no completion marker and possibly a torn tail. *)
  let done_p = Checkpoint.done_path ~dir ~index in
  if Sys.file_exists done_p then Sys.remove done_p;
  truncate_file (Checkpoint.file_path ~dir ~index) at

let test_load_drops_torn_tail () =
  with_dir @@ fun dir ->
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:2 () in
  let _s, _ =
    Shard.run ~checkpoint:dir ~workload:"synthetic" ~plan ~index:0
      ~eval:synthetic_eval ()
  in
  let path = Checkpoint.file_path ~dir ~index:0 in
  let full =
    match Checkpoint.load ~dir ~index:0 with
    | Some (_, chunks) -> List.length chunks
    | None -> Alcotest.fail "no checkpoint written"
  in
  check int "all chunks recorded" (List.length (Shard.chunks_of plan ~index:0))
    full;
  (* Chop the last 3 bytes off: the final record no longer parses and
     must be dropped; everything before it survives. *)
  truncate_file path (file_size path - 3);
  (match Checkpoint.load ~dir ~index:0 with
  | Some (_, chunks) -> check int "torn tail dropped" (full - 1) (List.length chunks)
  | None -> Alcotest.fail "prefix unreadable after torn tail");
  (* Chop into the header: the whole file is void. *)
  truncate_file path 5;
  check bool "header torn -> no checkpoint" true
    (Checkpoint.load ~dir ~index:0 = None)

let test_resume_after_truncation_at_any_offset () =
  (* The central crash-safety property: whatever byte the file is cut
     at — mid-line included — resume recomputes exactly the lost ranks
     and the final digest is byte-identical to an uninterrupted run. *)
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:2 () in
  let reference =
    let s, _ =
      Shard.run ~workload:"synthetic" ~plan ~index:0 ~eval:synthetic_eval ()
    in
    s.Shard.s_digest
  in
  let rng = Random.State.make [| 0xC4A5; 42 |] in
  for _trial = 1 to 12 do
    with_dir @@ fun dir ->
    let _ =
      Shard.run ~checkpoint:dir ~workload:"synthetic" ~plan ~index:0
        ~eval:synthetic_eval ()
    in
    let size = file_size (Checkpoint.file_path ~dir ~index:0) in
    let cut = Random.State.int rng (size + 1) in
    simulate_crash ~dir ~index:0 ~at:cut;
    let s, evaluated =
      Shard.run ~checkpoint:dir ~resume:true ~workload:"synthetic" ~plan
        ~index:0 ~eval:synthetic_eval ()
    in
    check string
      (Printf.sprintf "digest after cut at byte %d" cut)
      reference s.Shard.s_digest;
    let chunks = List.length (Shard.chunks_of plan ~index:0) in
    if evaluated < 0 || evaluated > chunks then
      Alcotest.failf "evaluated %d of %d chunks" evaluated chunks;
    check bool "done marker restored" true
      (Checkpoint.read_done ~dir ~index:0 <> None)
  done

let test_resume_rejects_corrupt_middle_record () =
  with_dir @@ fun dir ->
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:1 () in
  let reference, _ =
    Shard.run ~checkpoint:dir ~workload:"synthetic" ~plan ~index:0
      ~eval:synthetic_eval ()
  in
  (* Corrupt the second chunk record's counts, keeping the line valid
     JSON: the digest chain must catch it and recompute from there. *)
  let path = Checkpoint.file_path ~dir ~index:0 in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  let target = List.nth lines 2 (* header, chunk 0, chunk 1 *) in
  let corrupted =
    Str.global_replace (Str.regexp_string "\"correct\": 55") "\"correct\": 54"
      target
  in
  let corrupted =
    if corrupted = target then
      (* counts differ per chunk; flip whatever digit follows the key *)
      Str.replace_first (Str.regexp "\"correct\": [0-9]") "\"correct\": 0"
        target
    else corrupted
  in
  check bool "record actually altered" true (corrupted <> target);
  let oc = open_out path in
  List.iteri
    (fun i line ->
      output_string oc (if i = 2 then corrupted else line);
      output_char oc '\n')
    lines;
  close_out oc;
  Sys.remove (Checkpoint.done_path ~dir ~index:0);
  let s, evaluated =
    Shard.run ~checkpoint:dir ~resume:true ~workload:"synthetic" ~plan ~index:0
      ~eval:synthetic_eval ()
  in
  check string "digest recovered" reference.Shard.s_digest s.Shard.s_digest;
  let chunks = List.length (Shard.chunks_of plan ~index:0) in
  (* Chunk 0 restores; the corrupted record and everything after it
     recompute. *)
  check int "recomputed from the corruption" (chunks - 1) evaluated

let test_resume_discards_mismatched_header () =
  with_dir @@ fun dir ->
  let plan64 = Shard.plan ~total:1000 ~chunk:64 ~shards:2 () in
  let _ =
    Shard.run ~checkpoint:dir ~workload:"synthetic" ~plan:plan64 ~index:0
      ~eval:synthetic_eval ()
  in
  (* Same directory, different chunking: the old file must not be
     trusted. *)
  let plan32 = Shard.plan ~total:1000 ~chunk:32 ~shards:2 () in
  let s, evaluated =
    Shard.run ~checkpoint:dir ~resume:true ~workload:"synthetic" ~plan:plan32
      ~index:0 ~eval:synthetic_eval ()
  in
  let fresh, _ =
    Shard.run ~workload:"synthetic" ~plan:plan32 ~index:0 ~eval:synthetic_eval
      ()
  in
  check string "fresh run despite stale checkpoint" fresh.Shard.s_digest
    s.Shard.s_digest;
  check int "nothing restored"
    (List.length (Shard.chunks_of plan32 ~index:0))
    evaluated

let test_resume_of_finished_shard_is_noop () =
  with_dir @@ fun dir ->
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:2 () in
  let first, _ =
    Shard.run ~checkpoint:dir ~workload:"synthetic" ~plan ~index:1
      ~eval:synthetic_eval ()
  in
  let again, evaluated =
    Shard.run ~checkpoint:dir ~resume:true ~workload:"synthetic" ~plan ~index:1
      ~eval:synthetic_eval ()
  in
  check string "same digest" first.Shard.s_digest again.Shard.s_digest;
  check int "zero chunks recomputed" 0 evaluated

let test_resumed_real_workload_digest () =
  (* The same property on the real decider workload, interrupted at a
     byte chosen mid-file, at both job counts. *)
  let g = a1.Sweeps.w_geometry () in
  let plan =
    Shard.plan ~total:g.Sweeps.g_total ~chunk:a1.Sweeps.w_chunk ~shards:2 ()
  in
  let eval = a1.Sweeps.w_eval () in
  let reference =
    let s, _ = Shard.run ~workload:a1.Sweeps.w_name ~plan ~index:0 ~eval () in
    s.Shard.s_digest
  in
  List.iter
    (fun jobs ->
      with_jobs jobs @@ fun () ->
      with_dir @@ fun dir ->
      let _ =
        Shard.run ~checkpoint:dir ~workload:a1.Sweeps.w_name ~plan ~index:0
          ~eval ()
      in
      let size = file_size (Checkpoint.file_path ~dir ~index:0) in
      simulate_crash ~dir ~index:0 ~at:(size / 2);
      let s, _ =
        Shard.run ~checkpoint:dir ~resume:true ~workload:a1.Sweeps.w_name ~plan
          ~index:0 ~eval ()
      in
      check string
        (Printf.sprintf "resumed digest at jobs=%d" jobs)
        reference s.Shard.s_digest)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Summaries round-trip; backoff policy                                *)
(* ------------------------------------------------------------------ *)

let test_summary_roundtrip_and_read () =
  with_dir @@ fun dir ->
  let plan = Shard.plan ~total:1000 ~chunk:64 ~shards:3 () in
  let summaries = run_all_shards ~checkpoint:dir ~workload:"synthetic" ~plan () in
  let read = Shard.read_summaries ~dir ~shards:3 in
  check int "all summaries present" 3 (List.length read);
  List.iter
    (fun (i, s) ->
      match List.assoc_opt i read with
      | None -> Alcotest.failf "summary %d missing" i
      | Some r ->
          check string "digest round-trips" s.Shard.s_digest r.Shard.s_digest;
          check int "counts round-trip" s.Shard.s_correct r.Shard.s_correct)
    summaries

(* The bench JSON writer refuses to run while checkpoint writers are
   open, and its refusal names the open files — so the registry must
   expose exactly the live writers' paths, in open order, and forget
   them on close. *)
let test_active_writer_paths () =
  with_dir @@ fun dir ->
  check
    (Alcotest.list string)
    "no writers open" []
    (Checkpoint.active_writer_paths ());
  let header i =
    {
      Checkpoint.h_workload = "synthetic";
      h_index = i;
      h_of = 2;
      h_total = 100;
      h_chunk = 10;
    }
  in
  let w0 = Checkpoint.create ~dir (header 0) in
  let w1 = Checkpoint.create ~dir (header 1) in
  (* close is idempotent, so the guard only matters when a check below
     fails — without it the leaked writers would poison later tests
     through the global registry. *)
  Fun.protect ~finally:(fun () ->
      Checkpoint.close w0;
      Checkpoint.close w1)
  @@ fun () ->
  check
    (Alcotest.list string)
    "both paths, oldest first"
    [ Checkpoint.file_path ~dir ~index:0; Checkpoint.file_path ~dir ~index:1 ]
    (Checkpoint.active_writer_paths ());
  check int "count agrees" 2 (Checkpoint.active_writers ());
  Checkpoint.close w0;
  check
    (Alcotest.list string)
    "closed writer forgotten"
    [ Checkpoint.file_path ~dir ~index:1 ]
    (Checkpoint.active_writer_paths ());
  Checkpoint.close w1;
  check (Alcotest.list string) "all closed" []
    (Checkpoint.active_writer_paths ())

let test_backoff_deterministic_and_capped () =
  for index = 0 to 5 do
    for attempt = 0 to 9 do
      let d1 = Shard.backoff ~seed:7 ~index ~attempt in
      let d2 = Shard.backoff ~seed:7 ~index ~attempt in
      check (Alcotest.float 0.0) "deterministic" d1 d2;
      if d1 <= 0.0 || d1 > 8.0 *. 1.25 then
        Alcotest.failf "backoff %f out of (0, 10] at attempt %d" d1 attempt
    done
  done;
  (* The exponential base grows until the cap. *)
  let base a = Shard.backoff ~seed:0 ~index:0 ~attempt:a in
  check bool "grows before the cap" true (base 4 > base 0)

let () =
  Alcotest.run "shard"
    [
      ( "unrank",
        [
          Alcotest.test_case "matches enumeration order" `Quick
            test_unrank_matches_enumeration;
          Alcotest.test_case "enumerate_from is a suffix" `Quick
            test_enumerate_from_is_suffix;
        ] );
      ( "plan",
        [ QCheck_alcotest.to_alcotest plan_tiles_exactly ] );
      ( "merge",
        [
          Alcotest.test_case "synthetic counts and first failure" `Quick
            test_merge_synthetic;
          Alcotest.test_case "missing shard -> Incomplete" `Quick
            test_merge_incomplete;
          Alcotest.test_case "foreign summary -> Error" `Quick
            test_merge_rejects_foreign_summary;
          Alcotest.test_case "sharding reproduces unsharded digest" `Slow
            test_shard_merge_equals_unsharded;
          Alcotest.test_case "corollary1/certify workload digest pins" `Slow
            test_new_workload_digest_pins;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "torn tail dropped on load" `Quick
            test_load_drops_torn_tail;
          Alcotest.test_case "resume after truncation at any offset" `Slow
            test_resume_after_truncation_at_any_offset;
          Alcotest.test_case "corrupt middle record recomputed" `Quick
            test_resume_rejects_corrupt_middle_record;
          Alcotest.test_case "mismatched header discarded" `Quick
            test_resume_discards_mismatched_header;
          Alcotest.test_case "resume of finished shard is a no-op" `Quick
            test_resume_of_finished_shard_is_noop;
          Alcotest.test_case "resumed real workload digest" `Slow
            test_resumed_real_workload_digest;
          Alcotest.test_case "active writer paths tracked" `Quick
            test_active_writer_paths;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "summaries round-trip" `Quick
            test_summary_roundtrip_and_read;
          Alcotest.test_case "backoff deterministic and capped" `Quick
            test_backoff_deterministic_and_capped;
        ] );
    ]
