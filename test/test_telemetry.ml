(* The telemetry layer: JSON round-trips (including hostile strings),
   monotonic timing, per-run counter scoping, the pool's lost-task
   diagnosis, and the observation contract — enabling telemetry must
   leave every quick-bench digest byte-identical at any job count, and
   a traced run must produce schema-valid JSONL covering the
   runner/pool/memo/decider phases. *)

open Locald_graph
open Locald_local
open Locald_core
open Locald_runtime

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

module Json = Telemetry.Json

(* ------------------------------------------------------------------ *)
(* JSON emitter / parser                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip v = Json.of_string (Json.to_string v)

let test_json_scalars () =
  List.iter
    (fun v -> check bool (Json.to_string v ^ " round-trips") true (roundtrip v = v))
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Int min_int;
      Json.Float 0.0;
      Json.Float 3.0;
      Json.Float (-2.5);
      Json.Float 1.0e-9;
      Json.Float 0.1;
      Json.Float Float.pi;
      Json.String "";
      Json.String "plain";
      Json.List [];
      Json.Obj [];
      Json.List [ Json.Int 1; Json.String "x"; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool false ]) ];
    ]

let test_json_escaping () =
  (* The bug the emitter fixes: the old hand-rolled bench writer pasted
     ids into a format string, so a workload id containing a quote or a
     backslash produced invalid JSON. *)
  let hostile = "a\"b\\c\nd\te\r\x01f" in
  let entry =
    Json.Obj
      [
        ("wall_s", Json.Float 0.123456);
        ("jobs", Json.Int 4);
        ("n", Json.Int 2047);
        ("result_digest", Json.String hostile);
      ]
  in
  let parsed = roundtrip entry in
  check bool "hostile bench entry round-trips" true (parsed = entry);
  (match Json.member "result_digest" parsed with
  | Some (Json.String s) -> check Alcotest.string "hostile id preserved" hostile s
  | _ -> Alcotest.fail "result_digest missing after round-trip");
  (* The quoted form itself must be a valid JSON string document. *)
  check bool "escape_string emits parseable JSON" true
    (Json.of_string (Json.escape_string hostile) = Json.String hostile);
  (* Non-finite floats have no JSON syntax: they degrade to null rather
     than emitting the unparseable "nan"/"inf" the old writer would. *)
  check bool "nan degrades to null" true
    (Json.to_string (Json.Float Float.nan) = "null")

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "parser accepted %S" s
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul"; "{\"a\" 1}" ]

(* Arbitrary JSON values. Floats are kept finite, non-huge and
   fraction-bearing via a bounded range: integral doubles at or above
   1e15 legitimately print without '.' or 'e' and re-parse as [Int],
   which is outside the emitter's documented round-trip domain. *)
let json_gen =
  let open QCheck2.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then Float.rem f 1e12 else 0.) float
  in
  let any_string = string_size ~gen:char (int_bound 12) in
  sized
  @@ fix (fun self depth ->
         let scalar =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) QCheck2.Gen.bool;
               map (fun i -> Json.Int i) QCheck2.Gen.int;
               map (fun f -> Json.Float f) finite_float;
               map (fun s -> Json.String s) any_string;
             ]
         in
         if depth <= 0 then scalar
         else
           oneof
             [
               scalar;
               map
                 (fun l -> Json.List l)
                 (list_size (int_bound 4) (self (depth / 2)));
               map
                 (fun l -> Json.Obj l)
                 (list_size (int_bound 4)
                    (pair any_string (self (depth / 2))));
             ])

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string v) = v" ~count:500 json_gen
    (fun v -> roundtrip v = v)

(* ------------------------------------------------------------------ *)
(* Monotonic timing                                                    *)
(* ------------------------------------------------------------------ *)

let test_timing_monotonic () =
  let t = ref (Timing.now ()) in
  for _ = 1 to 1000 do
    let t' = Timing.now () in
    if t' < !t then Alcotest.fail "Timing.now went backwards";
    t := t'
  done;
  let t0 = Timing.now () in
  check bool "duration_since is never negative" true
    (Timing.duration_since t0 >= 0.);
  let (), d = Timing.time (fun () -> Sys.opaque_identity (ignore [| 1; 2 |])) in
  check bool "time reports a non-negative duration" true (d >= 0.)

(* ------------------------------------------------------------------ *)
(* Pool: the lost-task diagnosis                                       *)
(* ------------------------------------------------------------------ *)

let test_require_all () =
  check
    (Alcotest.array int)
    "full fan-out unwraps"
    [| 10; 20; 30 |]
    (Pool.require_all [| Some 10; Some 20; Some 30 |]);
  (match Pool.require_all [| Some 1; None; Some 3 |] with
  | _ -> Alcotest.fail "expected Lost_task"
  | exception Pool.Lost_task { index; total } ->
      check int "lost index" 1 index;
      check int "fan-out size" 3 total);
  (* The registered printer names the task — that is the point of
     replacing the old bare assertion. *)
  let msg = Printexc.to_string (Pool.Lost_task { index = 7; total = 12 }) in
  check bool "printer names the lost task" true
    (String.length msg > 0
    && (let has_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec go i =
            i + m <= n && (String.sub s i m = sub || go (i + 1))
          in
          go 0
        in
        has_sub msg "task 7 of 12"))

(* ------------------------------------------------------------------ *)
(* Per-run counter scoping                                             *)
(* ------------------------------------------------------------------ *)

(* A workload with nontrivial memo traffic: the exhaustive decider's
   quotient scan notes a hit per reused trie lookup and a miss per
   fresh decide. *)
let memo_workload () =
  let regime = Ids.f_linear_plus 1 in
  let p = { Tree_instances.regime; arity = 2; r = 2 } in
  let lg = Tree_instances.small_instance p ~apex:(0, 1) in
  let n = Labelled.order lg in
  Locald_decision.Decider.evaluate_exhaustive ~bound:n
    (Tree_deciders.p_decider p) ~expected:true ~instance:"H+" lg

let test_per_run_memo_counts () =
  (* The regression this pins: the old process-global counters were
     never reset between bench workloads, so the second of two
     back-to-back runs reported cumulative traffic. *)
  Telemetry.new_run ();
  let z = Memo.run_stats () in
  check int "fresh run starts at zero hits" 0 z.Memo.hits;
  check int "fresh run starts at zero misses" 0 z.Memo.misses;
  ignore (memo_workload ());
  let s1 = Memo.run_stats () in
  check bool "workload produced memo traffic" true (s1.Memo.hits + s1.Memo.misses > 0);
  Telemetry.new_run ();
  ignore (memo_workload ());
  let s2 = Memo.run_stats () in
  check int "second run reports independent hits" s1.Memo.hits s2.Memo.hits;
  check int "second run reports independent misses" s1.Memo.misses s2.Memo.misses;
  check int "second run reports independent distinct" s1.Memo.distinct
    s2.Memo.distinct;
  (* Stale handles made before the scope change must re-resolve: a
     counter created in an earlier run reads the current run. *)
  let c = Telemetry.Counter.make "test.scoped" in
  Telemetry.Counter.add c 5;
  Telemetry.new_run ();
  check int "handle re-resolves into the new run" 0 (Telemetry.Counter.get c);
  Telemetry.Counter.incr c;
  check int "and keeps counting there" 1 (Telemetry.Counter.get c)

(* ------------------------------------------------------------------ *)
(* Observation contract: telemetry cannot change results               *)
(* ------------------------------------------------------------------ *)

let digest_of x = Digest.to_hex (Digest.string (Marshal.to_string x []))

let regime = Ids.f_linear_plus 1
let tree_params = { Tree_instances.regime; arity = 2; r = 1 }
let big_tree = lazy (Tree_instances.big_tree tree_params)
let gmr_config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }

let gmr_instance =
  lazy
    (match
       Gmr.build ~config:gmr_config ~r:1
         (Locald_turing.Zoo.two_faced ~steps:3 ~real:0 ~fake:1)
     with
    | Ok t -> t
    | Error _ -> assert false)

let certify_digest (report : Locald_analysis.Analysis.report) =
  let open Locald_analysis.Analysis in
  digest_of
    ( verdict_name report.rep_verdict,
      report.rep_views,
      report.rep_events,
      report.rep_max_depth )

(* The six BENCH_quick.json workloads, digested exactly as the bench
   harness digests them. *)
let quick_workloads : (string * (unit -> string)) list =
  [
    ( "f1-coverage",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let c = Tree_deciders.coverage p ~t:2 in
        digest_of
          ( c.Tree_deciders.covered,
            c.Tree_deciders.total_views,
            c.Tree_deciders.uncovered_node ) );
    ( "exhaustive-decider",
      fun () ->
        let e = memo_workload () in
        digest_of
          ( e.Locald_decision.Decider.correct,
            e.Locald_decision.Decider.wrong,
            e.Locald_decision.Decider.assignments ) );
    ( "p3-coverage",
      fun () -> digest_of (Experiments.p3 ~quick:true ()) );
    ( "corollary1", fun () -> digest_of (Experiments.corollary1 ()) );
    ( "certify-tree",
      fun () ->
        certify_digest
          (Locald_analysis.Analysis.certify
             (Tree_deciders.p_decider tree_params)
             ~instances:[ ("T_r", Lazy.force big_tree) ]) );
    ( "certify-gmr",
      fun () ->
        let t = Lazy.force gmr_instance in
        certify_digest
          (Locald_analysis.Analysis.certify
             (Gmr_deciders.ld_decider ())
             ~instances:[ ("G(M,1)", t.Gmr.lg) ]) );
  ]

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let with_full_telemetry f =
  let path = Filename.temp_file "locald-telemetry" ".jsonl" in
  Telemetry.set_metrics true;
  Telemetry.open_sink path;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.close_sink ();
      Telemetry.set_metrics false;
      Sys.remove path)
    f

let test_telemetry_preserves_digests () =
  List.iter
    (fun (name, work) ->
      let baseline = with_jobs 1 work in
      check bool (name ^ ": telemetry was off for the baseline") false
        (Telemetry.active ());
      let on1 = with_full_telemetry (fun () -> with_jobs 1 work) in
      let on4 = with_full_telemetry (fun () -> with_jobs 4 work) in
      check Alcotest.string (name ^ ": traced jobs=1 digest unchanged") baseline
        on1;
      check Alcotest.string (name ^ ": traced jobs=4 digest unchanged") baseline
        on4)
    quick_workloads

(* ------------------------------------------------------------------ *)
(* Trace files: schema validity and phase coverage                     *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let trace_run work =
  let path = Filename.temp_file "locald-trace" ".jsonl" in
  Telemetry.open_sink path;
  Fun.protect ~finally:(fun () -> Telemetry.close_sink ()) work;
  let lines = read_lines path in
  Sys.remove path;
  lines

(* Every line parses, carries a string "ev" field, and the file is
   bracketed by run-start (with the schema tag) and run-end. *)
let validate_schema lines =
  check bool "trace is non-empty" true (List.length lines >= 2);
  let records =
    List.map
      (fun line ->
        match Json.of_string line with
        | v -> v
        | exception Json.Parse_error msg ->
            Alcotest.failf "unparseable trace line %S: %s" line msg)
      lines
  in
  List.iter
    (fun r ->
      match Json.member "ev" r with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.failf "record lacks an \"ev\" string: %s" (Json.to_string r))
    records;
  let first = List.hd records and last = List.nth records (List.length records - 1) in
  check bool "first record is run-start" true
    (Json.member "ev" first = Some (Json.String "run-start"));
  check bool "run-start carries the schema tag" true
    (Json.member "schema" first = Some (Json.String Telemetry.schema));
  check bool "last record is run-end" true
    (Json.member "ev" last = Some (Json.String "run-end"));
  records

let span_names records =
  List.filter_map
    (fun r ->
      match (Json.member "ev" r, Json.member "name" r) with
      | Some (Json.String "span"), Some (Json.String name) -> Some name
      | _ -> None)
    records

let test_trace_certify_gmr_schema () =
  let lines =
    trace_run (fun () ->
        let t = Lazy.force gmr_instance in
        ignore
          (Locald_analysis.Analysis.certify
             (Gmr_deciders.ld_decider ())
             ~instances:[ ("G(M,1)", t.Gmr.lg) ]))
  in
  let records = validate_schema lines in
  check bool "certify run recorded an analysis.certify span" true
    (List.mem "analysis.certify" (span_names records))

let test_trace_phase_coverage () =
  (* table1 drives the full stack: Decider.evaluate over prepared
     runners, memo misses under the default exact mode, pool fan-outs.
     The CI trace check asserts the same four phase prefixes with jq. *)
  let lines =
    trace_run (fun () -> ignore (Experiments.table1 ~quick:true ~seed:42 ()))
  in
  let records = validate_schema lines in
  let names = span_names records in
  let prefixed p =
    List.exists
      (fun name ->
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p)
      names
  in
  List.iter
    (fun p -> check bool ("trace has a " ^ p ^ "* span") true (prefixed p))
    [ "runner."; "pool."; "memo."; "decider." ];
  (* Span records describe their nesting. *)
  List.iter
    (fun r ->
      match Json.member "ev" r with
      | Some (Json.String "span") ->
          (match Json.member "dur_s" r with
          | Some (Json.Float d) ->
              if d < 0. then Alcotest.fail "negative span duration"
          | _ -> Alcotest.fail "span lacks dur_s");
          (match Json.member "depth" r with
          | Some (Json.Int d) when d >= 0 -> ()
          | _ -> Alcotest.fail "span lacks a depth");
          (match Json.member "domain" r with
          | Some (Json.Int _) -> ()
          | _ -> Alcotest.fail "span lacks a domain id")
      | _ -> ())
    records

(* Fault events: a lossy traced run logs each injected drop with its
   link, and the record set matches the run's own statistics. *)
let test_trace_fault_events () =
  let lg = Labelled.init (Gen.grid 4 4) (fun v -> v mod 3) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:1 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let plan = Faults.make ~seed:11 ~drop:0.2 () in
  let ids = Ids.sequential (Labelled.order lg) in
  let stats = ref None in
  let lines =
    trace_run (fun () ->
        stats := Some (snd (Fault_runner.run ~plan alg lg ~ids)))
  in
  let records = validate_schema lines in
  let stats = Option.get !stats in
  let drops =
    List.filter
      (fun r ->
        Json.member "ev" r = Some (Json.String "event")
        && Json.member "name" r = Some (Json.String "fault.drop"))
      records
  in
  check int "one fault.drop event per dropped message"
    stats.Fault_runner.dropped (List.length drops);
  List.iter
    (fun r ->
      match
        (Json.member "round" r, Json.member "src" r, Json.member "dst" r)
      with
      | Some (Json.Int _), Some (Json.Int _), Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "fault.drop lacks round/src/dst fields")
    drops;
  check bool "lossy run recorded a faults.run span" true
    (List.mem "faults.run" (span_names records))

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "scalar and container round-trips" `Quick
            test_json_scalars;
          Alcotest.test_case "hostile strings escape correctly" `Quick
            test_json_escaping;
          Alcotest.test_case "parser rejects malformed input" `Quick
            test_json_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "timing",
        [ Alcotest.test_case "monotonic clock" `Quick test_timing_monotonic ] );
      ( "pool",
        [ Alcotest.test_case "lost-task diagnosis" `Quick test_require_all ] );
      ( "run scoping",
        [
          Alcotest.test_case "per-run memo counters" `Quick
            test_per_run_memo_counts;
        ] );
      ( "observation contract",
        [
          Alcotest.test_case "digests unchanged under full telemetry" `Slow
            test_telemetry_preserves_digests;
        ] );
      ( "traces",
        [
          Alcotest.test_case "certify-gmr trace is schema-valid" `Quick
            test_trace_certify_gmr_schema;
          Alcotest.test_case "table1 trace covers all phases" `Quick
            test_trace_phase_coverage;
          Alcotest.test_case "fault events land in the trace" `Quick
            test_trace_fault_events;
        ] );
    ]
