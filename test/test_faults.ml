(* Tests for the fault-injection layer: plan validation and coin
   determinism, the two invariants of the faulted gossip engine
   (empty-plan identity, seeded determinism), graceful degradation
   (crashes, incomplete views, fuel budgets, raising deciders), and
   the three-valued verdict aggregation. *)

open Locald_graph
open Locald_local
open Locald_decision

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rng () = Random.State.make [| 0xfa17 |]

(* The same everything-sensitive algorithm the runner tests use. *)
let fingerprint_algorithm ~radius =
  Algorithm.make ~name:"fingerprint" ~radius (fun view ->
      let ids = match View.ids view with Some ids -> ids | None -> [||] in
      let pairs =
        Array.to_list (Array.mapi (fun v id -> (id, view.View.labels.(v))) ids)
      in
      Hashtbl.hash (List.sort compare pairs, Graph.size view.View.graph))

let test_graphs =
  [ Gen.cycle 7; Gen.grid 3 4; Gen.complete_binary_tree 3; Gen.star 6;
    Gen.path 5 ]

(* ------------------------------------------------------------------ *)
(* Plans and coins                                                     *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  let rejected f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "drop > 1 rejected" true
    (rejected (fun () -> Faults.make ~drop:1.5 ()));
  check bool "negative duplicate rejected" true
    (rejected (fun () -> Faults.make ~duplicate:(-0.1) ()));
  check bool "negative retries rejected" true
    (rejected (fun () -> Faults.make ~retries:(-1) ()));
  check bool "negative fuel rejected" true
    (rejected (fun () -> Faults.make ~fuel:(-3) ()));
  check bool "crash round 0 rejected" true
    (rejected (fun () -> Faults.make ~crashes:[ (0, 0) ] ()));
  check bool "negative crash node rejected" true
    (rejected (fun () -> Faults.make ~crashes:[ (-1, 1) ] ()));
  check bool "empty plan is empty" true (Faults.is_empty Faults.empty);
  (* Retries alone cannot change any view: still "empty". *)
  check bool "retries-only plan is empty" true
    (Faults.is_empty (Faults.make ~retries:3 ()));
  check bool "dropping plan is not empty" false
    (Faults.is_empty (Faults.make ~drop:0.01 ()))

let test_crash_round () =
  let plan = Faults.make ~crashes:[ (4, 3); (4, 1); (2, 2) ] () in
  check (Alcotest.option int) "earliest round wins" (Some 1)
    (Faults.crash_round plan 4);
  check (Alcotest.option int) "other node" (Some 2) (Faults.crash_round plan 2);
  check (Alcotest.option int) "uncrashed node" None (Faults.crash_round plan 0)

let test_coins_deterministic () =
  let plan = Faults.make ~seed:42 ~drop:0.5 ~duplicate:0.5 () in
  (* Pure in all arguments: same coin twice, and the empirical rate is
     in the right ballpark. *)
  let hits = ref 0 in
  for i = 0 to 999 do
    let a = Faults.drops plan ~round:2 ~src:i ~dst:(i + 1) in
    let b = Faults.drops plan ~round:2 ~src:i ~dst:(i + 1) in
    check bool "coin is pure" a b;
    if a then incr hits
  done;
  check bool "drop rate near 1/2" true (!hits > 400 && !hits < 600);
  (* Distinct (round, src, dst) triples are (almost surely) not all
     equal, and drop/duplicate coins are independent streams. *)
  check bool "coins vary across rounds" true
    (List.exists
       (fun r ->
         Faults.drops plan ~round:r ~src:0 ~dst:1
         <> Faults.drops plan ~round:(r + 1) ~src:0 ~dst:1)
       [ 1; 2; 3; 4; 5 ]);
  let plan' = Faults.make ~seed:43 ~drop:0.5 () in
  check bool "seed matters" true
    (List.exists
       (fun i ->
         Faults.drops plan ~round:1 ~src:i ~dst:0
         <> Faults.drops plan' ~round:1 ~src:i ~dst:0)
       [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* ------------------------------------------------------------------ *)
(* Invariant 1: empty-plan identity                                    *)
(* ------------------------------------------------------------------ *)

let test_empty_plan_identity () =
  let rng = rng () in
  List.iter
    (fun g ->
      let lg = Labelled.init g (fun v -> v mod 3) in
      let ids = Ids.shuffled rng (Graph.order g) in
      List.iter
        (fun radius ->
          let alg = fingerprint_algorithm ~radius in
          let expected = Runner.run_message_passing alg lg ~ids in
          let outcomes = Fault_runner.run_outputs ~plan:Faults.empty alg lg ~ids in
          Array.iteri
            (fun v outcome ->
              match outcome with
              | Fault_runner.Decided o ->
                  check int
                    (Printf.sprintf "node %d agrees (n=%d, t=%d)" v
                       (Graph.order g) radius)
                    expected.(v) o
              | Fault_runner.Unknown r ->
                  Alcotest.failf "node %d unknown (%s) under the empty plan" v
                    (Fault_runner.reason_name r))
            outcomes)
        [ 0; 1; 2; 3 ])
    test_graphs

let test_empty_plan_stats () =
  (* Under the empty plan the bandwidth accounting must coincide with
     the fault-free engine's. *)
  let lg = Labelled.init (Gen.grid 3 4) (fun v -> v mod 2) in
  let ids = Ids.sequential 12 in
  let alg = fingerprint_algorithm ~radius:2 in
  let _, base = Runner.run_message_passing_stats alg lg ~ids in
  let _, faulted = Fault_runner.run ~plan:Faults.empty alg lg ~ids in
  check int "rounds" base.Runner.rounds faulted.Fault_runner.rounds;
  check int "messages" base.Runner.messages faulted.Fault_runner.messages;
  check int "delivered = messages" faulted.Fault_runner.messages
    faulted.Fault_runner.delivered;
  check int "gross payload" base.Runner.payload_items
    faulted.Fault_runner.payload_items;
  check int "net payload" base.Runner.new_items faulted.Fault_runner.new_items;
  check int "nothing dropped" 0 faulted.Fault_runner.dropped;
  check int "nothing degraded" 0 (Fault_runner.degraded_nodes faulted)

(* ------------------------------------------------------------------ *)
(* Invariant 2: seeded determinism                                     *)
(* ------------------------------------------------------------------ *)

let test_seeded_determinism () =
  let lg = Labelled.init (Gen.grid 4 4) (fun v -> v mod 3) in
  let ids = Ids.shuffled (rng ()) 16 in
  let alg = fingerprint_algorithm ~radius:2 in
  let plan =
    Faults.make ~seed:7 ~drop:0.2 ~duplicate:0.1 ~crashes:[ (3, 2) ] ~retries:1
      ()
  in
  let run () = Fault_runner.run ~plan alg lg ~ids in
  let out1, stats1 = run () in
  let out2, stats2 = run () in
  check bool "identical outcomes" true (out1 = out2);
  check bool "identical stats" true (stats1 = stats2);
  (* A different seed gives a genuinely different trace. *)
  let out3, _ =
    Fault_runner.run ~plan:{ plan with Faults.seed = 8 } alg lg ~ids
  in
  check bool "another seed differs" true (out1 <> out3)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

let test_total_loss () =
  let lg = Labelled.init (Gen.cycle 6) (fun v -> v) in
  let ids = Ids.sequential 6 in
  let plan = Faults.make ~drop:1.0 () in
  (* Radius 1 needs the neighbours: with every message lost, every
     node's ball stays incomplete. *)
  let outcomes, stats =
    Fault_runner.run ~plan (fingerprint_algorithm ~radius:1) lg ~ids
  in
  Array.iter
    (fun o ->
      check bool "incomplete view" true
        (o = Fault_runner.Unknown Fault_runner.Incomplete_view))
    outcomes;
  check int "all degraded" 6 (Fault_runner.degraded_nodes stats);
  check int "everything dropped" stats.Fault_runner.messages
    stats.Fault_runner.dropped;
  (* Radius 0 needs no messages at all: still decided. *)
  let outcomes0 =
    Fault_runner.run_outputs ~plan (fingerprint_algorithm ~radius:0) lg ~ids
  in
  check bool "radius 0 unaffected" true
    (Array.for_all Fault_runner.decided outcomes0)

let test_crash_stop () =
  let lg = Labelled.init (Gen.star 5) (fun v -> v mod 2) in
  let ids = Ids.sequential (Labelled.order lg) in
  let plan = Faults.make ~crashes:[ (0, 1) ] () in
  (* The hub of the star crashes before sending anything: it answers
     Unknown Crashed, and no leaf can complete its radius-1 ball. *)
  let outcomes, stats =
    Fault_runner.run ~plan (fingerprint_algorithm ~radius:1) lg ~ids
  in
  check bool "crashed node unknown" true
    (outcomes.(0) = Fault_runner.Unknown Fault_runner.Crashed);
  check int "one crash counted" 1 stats.Fault_runner.crashed;
  Array.iteri
    (fun v o ->
      if v > 0 then
        check bool
          (Printf.sprintf "leaf %d starved" v)
          true
          (o = Fault_runner.Unknown Fault_runner.Incomplete_view))
    outcomes

let test_fuel_exhaustion () =
  let lg = Labelled.init (Gen.cycle 8) (fun v -> v) in
  let ids = Ids.sequential 8 in
  (* The default cost model charges one unit per view node; a radius-1
     view on a cycle has 3 nodes, so fuel 2 starves every node — and
     must do so by answering Unknown, never by raising. *)
  let plan = Faults.make ~fuel:2 () in
  let outcomes, stats =
    Fault_runner.run ~plan (fingerprint_algorithm ~radius:1) lg ~ids
  in
  Array.iter
    (fun o ->
      check bool "fuel exhausted" true
        (o = Fault_runner.Unknown Fault_runner.Fuel_exhausted))
    outcomes;
  check int "metered" 8 stats.Fault_runner.fuel_exhausted;
  (* Fuel 3 is exactly enough. *)
  let outcomes' =
    Fault_runner.run_outputs ~plan:(Faults.make ~fuel:3 ())
      (fingerprint_algorithm ~radius:1) lg ~ids
  in
  check bool "exact budget suffices" true
    (Array.for_all Fault_runner.decided outcomes');
  (* A custom cost model overrides the default. *)
  let outcomes'' =
    Fault_runner.run_outputs ~plan ~cost:(fun _ -> 1)
      (fingerprint_algorithm ~radius:1) lg ~ids
  in
  check bool "custom cost" true (Array.for_all Fault_runner.decided outcomes'')

let test_decide_failure () =
  let lg = Labelled.init (Gen.path 4) (fun v -> v) in
  let ids = Ids.sequential 4 in
  let bomb =
    Algorithm.make ~name:"bomb" ~radius:1 (fun view ->
        if View.order view < 3 then failwith "endpoint" else 1)
  in
  (* The two endpoints' views have 2 nodes: their decide raises, which
     the runner turns into Unknown Decide_failed. *)
  let outcomes = Fault_runner.run_outputs ~plan:Faults.empty bomb lg ~ids in
  check bool "endpoint 0 caught" true
    (outcomes.(0) = Fault_runner.Unknown Fault_runner.Decide_failed);
  check bool "endpoint 3 caught" true
    (outcomes.(3) = Fault_runner.Unknown Fault_runner.Decide_failed);
  check bool "inner nodes decided" true
    (Fault_runner.decided outcomes.(1) && Fault_runner.decided outcomes.(2))

let test_duplicates_invisible () =
  (* Merges are idempotent: duplicate deliveries change the bandwidth
     meters but never the outputs. *)
  let lg = Labelled.init (Gen.grid 3 3) (fun v -> v mod 2) in
  let ids = Ids.shuffled (rng ()) 9 in
  let alg = fingerprint_algorithm ~radius:2 in
  let plan = Faults.make ~seed:5 ~duplicate:1.0 () in
  let outcomes, stats = Fault_runner.run ~plan alg lg ~ids in
  let expected = Runner.run_message_passing alg lg ~ids in
  Array.iteri
    (fun v o ->
      match o with
      | Fault_runner.Decided x -> check int "output unchanged" expected.(v) x
      | Fault_runner.Unknown _ -> Alcotest.fail "duplicates degraded a node")
    outcomes;
  check int "every message duplicated" stats.Fault_runner.messages
    stats.Fault_runner.duplicated;
  check int "delivered twice" (2 * stats.Fault_runner.messages)
    stats.Fault_runner.delivered

let test_retries_recover () =
  (* Re-gossip rounds recover knowledge lost to drops: across a batch
     of seeds, generous retries leave (weakly) fewer incomplete nodes
     than none, and strictly fewer somewhere in the batch. *)
  let lg = Labelled.init (Gen.cycle 8) (fun v -> v) in
  let ids = Ids.sequential 8 in
  let alg = fingerprint_algorithm ~radius:2 in
  let incomplete ~seed ~retries =
    let plan = Faults.make ~seed ~drop:0.3 ~retries () in
    let _, stats = Fault_runner.run ~plan alg lg ~ids in
    stats.Fault_runner.incomplete
  in
  let total retries =
    List.fold_left
      (fun acc seed -> acc + incomplete ~seed ~retries)
      0
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let without = total 0 and with_retries = total 4 in
  check bool
    (Printf.sprintf "retries help (%d -> %d)" without with_retries)
    true
    (with_retries < without)

(* ------------------------------------------------------------------ *)
(* Soundness: every Decided output is the fault-free output            *)
(* ------------------------------------------------------------------ *)

let prop_decided_outputs_sound =
  QCheck2.Test.make
    ~name:"faulted Decided outputs equal the fault-free outputs" ~count:60
    QCheck2.Gen.(triple (int_range 3 14) (int_bound 1_000_000) (int_bound 2))
    (fun (n, seed, radius) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng ~n ~p:0.3 in
      let lg = Labelled.init g (fun v -> (v * 5) mod 3) in
      let ids = Ids.shuffled rng n in
      let alg = fingerprint_algorithm ~radius in
      let expected = Runner.run alg lg ~ids in
      let plan =
        Faults.make ~seed ~drop:0.25 ~duplicate:0.1
          ~crashes:[ (Random.State.int rng n, 1 + Random.State.int rng 2) ]
          ~retries:(Random.State.int rng 3)
          ()
      in
      let outcomes = Fault_runner.run_outputs ~plan alg lg ~ids in
      Array.for_all2
        (fun outcome e ->
          match outcome with
          | Fault_runner.Decided o -> o = e
          | Fault_runner.Unknown _ -> true)
        outcomes expected)

(* ------------------------------------------------------------------ *)
(* Verdict aggregation and the faulted decider                         *)
(* ------------------------------------------------------------------ *)

let test_outcome_aggregation () =
  let open Verdict.Outcome in
  let d = Verdict.of_outcomes [| Accept; Accept; Accept |] in
  check bool "all yes accepts" true (Verdict.accepts d.Verdict.verdict);
  check bool "decisive" true (Verdict.decisive d);
  let d = Verdict.of_outcomes [| Accept; Reject; Accept |] in
  check bool "one no rejects" true (Verdict.rejects d.Verdict.verdict);
  let d = Verdict.of_outcomes [| Accept; Unknown; Reject; Unknown |] in
  check bool "unknowns degrade" true (Verdict.degraded d);
  check (Alcotest.list int) "unknown set" [ 1; 3 ] d.Verdict.unknowns;
  (* ... but a Reject among the decided nodes keeps its force. *)
  check bool "reject survives degradation" true
    (Verdict.rejects d.Verdict.verdict)

let test_decider_degrades_not_lies () =
  (* An accepting instance under heavy loss must degrade (or stay
     correct) — it must never flip to a decisive wrong answer. This is
     the "no spurious separations" guarantee at the decider level. *)
  let lg = Labelled.init (Gen.grid 4 4) (fun v -> v mod 2) in
  let always_yes = Algorithm.make ~name:"yes" ~radius:1 (fun _ -> true) in
  let rng = rng () in
  for seed = 0 to 19 do
    let plan = Faults.make ~seed ~drop:0.5 () in
    let ids = Ids.shuffled rng 16 in
    let d, _ = Decider.decide_faulty ~plan always_yes lg ~ids in
    if Verdict.decisive d then
      check bool "decisive implies correct" true
        (Verdict.accepts d.Verdict.verdict)
  done

let test_evaluate_faulty_tallies () =
  let lg = Labelled.init (Gen.cycle 9) (fun v -> v mod 3) in
  let always_yes = Algorithm.make ~name:"yes" ~radius:1 (fun _ -> true) in
  let plan = Faults.make ~seed:3 ~drop:0.3 () in
  let e =
    Decider.evaluate_faulty ~rng:(rng ()) ~regime:(Ids.f_linear_plus 1)
      ~runs:12 ~plan always_yes ~expected:true ~instance:"C9" lg
  in
  check int "runs" 12 e.Decider.f_runs;
  check int "tallies partition the runs" 12
    (e.Decider.f_correct + e.Decider.f_wrong + e.Decider.f_degraded);
  check int "never wrong" 0 e.Decider.f_wrong;
  check bool "loss was injected" true (e.Decider.f_dropped > 0)

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "crash rounds" `Quick test_crash_round;
          Alcotest.test_case "coin determinism" `Quick test_coins_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "empty-plan identity" `Quick test_empty_plan_identity;
          Alcotest.test_case "empty-plan stats" `Quick test_empty_plan_stats;
          Alcotest.test_case "seeded determinism" `Quick test_seeded_determinism;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "total loss" `Quick test_total_loss;
          Alcotest.test_case "crash-stop" `Quick test_crash_stop;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "decide failure" `Quick test_decide_failure;
          Alcotest.test_case "duplicates invisible" `Quick test_duplicates_invisible;
          Alcotest.test_case "retries recover" `Quick test_retries_recover;
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest prop_decided_outputs_sound ] );
      ( "verdicts",
        [
          Alcotest.test_case "aggregation" `Quick test_outcome_aggregation;
          Alcotest.test_case "degrades, never lies" `Quick
            test_decider_degrades_not_lies;
          Alcotest.test_case "faulted evaluation" `Quick
            test_evaluate_faulty_tallies;
        ] );
    ]
