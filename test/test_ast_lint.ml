(* The AST analysis engine: per-rule positive/negative fixtures,
   scope awareness (opens, aliases, shadowing), the rule families a
   lexical scanner provably cannot express, the superset property over
   the ported rules, the parse-failure fallback, baselines, and the
   repo's own analyze-clean gate.

   Fixtures are ordinary string literals (the lexical scanner masks
   them when this file itself is linted; the AST engine sees them as
   constants), assembled with [String.concat "\n"] where a fixture
   needs several lines. *)

open Locald_analysis

let check = Alcotest.check

let rule =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Ast_rules.name r))
    ( = )

let rules = Alcotest.list rule

(* A path with no policy allowance: ids, decorated keys and clocks all
   banned, every rule enabled. *)
let strict = Ast_lint.config_for "lib/core/fixture.ml"

let scan ?(config = strict) text =
  Ast_lint.scan_string ~file:"lib/core/fixture.ml" ~config text

let rules_of ?config text =
  List.map (fun f -> f.Ast_lint.a_rule) (scan ?config text)

let lexical text =
  Lint.scan_string ~file:"lib/core/fixture.ml" ~allow_ids:false text

(* ------------------------------------------------------------------ *)
(* Ported rules                                                        *)
(* ------------------------------------------------------------------ *)

let test_poly_compare () =
  check rules "structural graph compare" [ Ast_rules.Poly_compare ]
    (rules_of "let f a b = a.View.graph = b.View.graph");
  check rules "structural labels disequality" [ Ast_rules.Poly_compare ]
    (rules_of "let f a b = assert (a.View.labels <> b.View.labels)");
  check rules "polymorphic hash of payload" [ Ast_rules.Poly_compare ]
    (rules_of "let h v = Hashtbl.hash v.View.labels");
  check rules "mediated equality" []
    (rules_of "let eq a b = Graph.equal a b");
  check rules "physical equality" []
    (rules_of "let phys a b = a.View.graph == b.View.graph");
  check rules "compare without projection" [] (rules_of "let f a b = a = b");
  check rules "hash of scalar tuple" []
    (rules_of "let h v n = Hashtbl.hash (View.center v, n)")

let test_naked_ids () =
  check rules "field access" [ Ast_rules.Naked_ids_access ]
    (rules_of "let a v = v.View.ids");
  check rules "record pattern" [ Ast_rules.Naked_ids_access ]
    (rules_of "let f { View.ids; _ } = ids");
  check rules "accessor call" [] (rules_of "let a v = View.ids v");
  check rules "allowed for the owning layer" []
    (Ast_lint.scan_string ~file:"lib/graph/view.ml"
       ~config:(Ast_lint.config_for "lib/graph/view.ml")
       "let a v = v.View.ids"
    |> List.map (fun f -> f.Ast_lint.a_rule))

let test_self_init () =
  check rules "nondeterministic seeding" [ Ast_rules.Self_init ]
    (rules_of "let () = Random.self_init ()");
  check rules "shadowed module is silent" []
    (rules_of
       (String.concat "\n"
          [ "module Random = Det"; "let x = Random.self_init ()" ]))

let test_decorated_key () =
  check rules "polymorphic hash on a memo key" [ Ast_rules.Decorated_key ]
    (rules_of
       "let t = Memo.create ~hash:Hashtbl.hash ~equal:Memo.equal_node_ids ()");
  check rules "structural equality on a memo key" [ Ast_rules.Decorated_key ]
    (rules_of "let t = Memo.create ~equal:( = ) ()");
  check rules "polymorphic compare on a memo key" [ Ast_rules.Decorated_key ]
    (rules_of "let t = Memo.create ~equal:compare ()");
  check rules "mediated key functions" []
    (rules_of
       "let t = Memo.create ~hash:(View.fingerprint Memo.structural_hash) ()");
  check rules "punned variable named hash" []
    (rules_of "let f ~hash = Memo.create ~hash ()");
  check rules "allowed for the owning layer" []
    (Ast_lint.scan_string ~file:"lib/runtime/memo.ml"
       ~config:(Ast_lint.config_for "lib/runtime/memo.ml")
       "let t = Memo.create ~hash:Hashtbl.hash ()"
    |> List.map (fun f -> f.Ast_lint.a_rule))

(* What denotation-grounding buys over token matching: the banned
   function reached through a local open. The lexical scanner misses
   it; the AST engine resolves [hash] under [open Hashtbl]. *)
let test_decorated_key_through_open () =
  let fixture = "let t = Memo.create ~hash:(let open Hashtbl in hash) ()" in
  check rules "lexical scanner misses the open" []
    (List.map (fun f -> Ast_rules.of_lexical f.Lint.f_rule) (lexical fixture));
  check rules "AST engine resolves it" [ Ast_rules.Decorated_key ]
    (rules_of fixture)

(* ------------------------------------------------------------------ *)
(* New families — with the lexical miss asserted alongside each        *)
(* ------------------------------------------------------------------ *)

let lexically_invisible name fixture =
  check (Alcotest.list rule)
    (name ^ ": lexical scanner sees nothing")
    []
    (List.map (fun f -> Ast_rules.of_lexical f.Lint.f_rule) (lexical fixture))

let test_domain_race () =
  let racy =
    String.concat "\n"
      [
        "let hits = ref 0";
        "let run xs = Pool.map (fun x -> incr hits; x) xs";
      ]
  in
  check rules "toplevel ref captured in Pool.map" [ Ast_rules.Domain_race ]
    (rules_of racy);
  lexically_invisible "domain-race" racy;
  check rules "mutated toplevel record captured"
    [ Ast_rules.Domain_race ]
    (rules_of
       (String.concat "\n"
          [
            "let stats = { hits = 0; misses = 0 }";
            "let run xs = Pool.map (fun x -> stats.hits <- x; x) xs";
          ]));
  check rules "queue captured in Domain.spawn" [ Ast_rules.Domain_race ]
    (rules_of
       (String.concat "\n"
          [
            "let q = Queue.create ()";
            "let d () = Domain.spawn (fun () -> Queue.push 1 q)";
          ]));
  check rules "mutex-mediated capture" []
    (rules_of
       (String.concat "\n"
          [
            "let hits = ref 0";
            "let m = Mutex.create ()";
            "let run xs =";
            "  Pool.map (fun x -> Mutex.protect m (fun () -> incr hits); x) xs";
          ]));
  check rules "function-local ref" []
    (rules_of "let run xs = let acc = ref 0 in Pool.map (fun x -> incr acc; x) xs");
  check rules "rebound name inside the closure" []
    (rules_of
       (String.concat "\n"
          [
            "let hits = ref 0";
            "let run xs = Pool.map (fun hits -> hits + 1) xs";
          ]))

let test_nondet_random () =
  check rules "global Random op" [ Ast_rules.Nondet_random ]
    (rules_of "let roll () = Random.int 6");
  lexically_invisible "nondet-random" "let roll () = Random.int 6";
  check rules "seeded state is fine" []
    (rules_of "let roll st = Random.State.int st 6");
  check rules "shadowed module is silent" []
    (rules_of
       (String.concat "\n"
          [ "module Random = Det_random"; "let roll () = Random.int 6" ]))

let test_nondet_clock () =
  check rules "gettimeofday" [ Ast_rules.Nondet_clock ]
    (rules_of "let t0 () = Unix.gettimeofday ()");
  check rules "Sys.time" [ Ast_rules.Nondet_clock ]
    (rules_of "let t1 () = Sys.time ()");
  lexically_invisible "nondet-clock" "let t0 () = Unix.gettimeofday ()";
  check rules "mediated clock" [] (rules_of "let t () = Timing.now ()");
  check rules "the clock owner is exempt" []
    (Ast_lint.scan_string ~file:"lib/runtime/timing.ml"
       ~config:(Ast_lint.config_for "lib/runtime/timing.ml")
       "let now () = Unix.gettimeofday ()"
    |> List.map (fun f -> f.Ast_lint.a_rule))

let test_hashtbl_order () =
  let leaky =
    "let digest t = Digest.string (Hashtbl.fold (fun k v a -> a ^ k ^ v) t \"\")"
  in
  check rules "fold feeding a digest" [ Ast_rules.Hashtbl_order ]
    (rules_of leaky);
  lexically_invisible "hashtbl-order" leaky;
  check rules "fold feeding a checkpoint"
    [ Ast_rules.Hashtbl_order ]
    (rules_of
       "let save w t = Checkpoint.append w (Hashtbl.fold (fun k _ a -> k :: a) t [])");
  check rules "fold away from any sink" []
    (rules_of "let keys t = Hashtbl.fold (fun k _ a -> k :: a) t []");
  check rules "digest of a plain string" []
    (rules_of "let d s = Digest.string s")

let test_checkpoint_guard () =
  let unguarded =
    String.concat "\n"
      [
        "let run dir write =";
        "  let w = Checkpoint.create ~dir ~index:0 in";
        "  write w;";
        "  Checkpoint.close w";
      ]
  in
  check rules "unguarded writer" [ Ast_rules.Checkpoint_guard ]
    (rules_of unguarded);
  lexically_invisible "checkpoint-guard" unguarded;
  check rules "Fun.protect guard" []
    (rules_of
       (String.concat "\n"
          [
            "let run dir write =";
            "  let w = Checkpoint.create ~dir ~index:0 in";
            "  Fun.protect";
            "    ~finally:(fun () -> Checkpoint.close w)";
            "    (fun () -> write w)";
          ]));
  check rules "exception-matching guard" []
    (rules_of
       (String.concat "\n"
          [
            "let run dir write =";
            "  let w = Checkpoint.resume ~dir ~index:0 in";
            "  match write w with";
            "  | v -> Checkpoint.close w; v";
            "  | exception e -> Checkpoint.close w; raise e";
          ]));
  check rules "no close in the body at all" []
    (rules_of
       (String.concat "\n"
          [
            "let open_writer dir =";
            "  let w = Checkpoint.create ~dir ~index:0 in";
            "  w";
          ]))

(* ------------------------------------------------------------------ *)
(* Cross-cutting behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_allow_marker () =
  check rules "marker suppresses on its line" []
    (rules_of ("let a v = v.View.ids (* " ^ Lint.allow_marker ^ " *)"))

let test_severities () =
  check Alcotest.string "hashtbl-order is a warning" "warning"
    (Ast_rules.severity_name (Ast_rules.severity Ast_rules.Hashtbl_order));
  check Alcotest.string "checkpoint-guard is a warning" "warning"
    (Ast_rules.severity_name (Ast_rules.severity Ast_rules.Checkpoint_guard));
  check Alcotest.string "domain-race is an error" "error"
    (Ast_rules.severity_name (Ast_rules.severity Ast_rules.Domain_race));
  List.iter
    (fun r ->
      check
        (Alcotest.option rule)
        ("of_name round-trips " ^ Ast_rules.name r)
        (Some r)
        (Ast_rules.of_name (Ast_rules.name r)))
    Ast_rules.all

let test_test_allow_knob () =
  let fixture = "let roll () = Random.int 6" in
  let under path ?test_allow () =
    Ast_lint.scan_string ~file:path
      ~config:(Ast_lint.config_for ?test_allow path)
      fixture
    |> List.map (fun f -> f.Ast_lint.a_rule)
  in
  check Alcotest.bool "test paths recognised" true
    (Ast_lint.under_test "test/fixture.ml");
  check rules "test path still strict by default"
    [ Ast_rules.Nondet_random ]
    (under "test/fixture.ml" ());
  check rules "test_allow waives the rule under test/" []
    (under "test/fixture.ml" ~test_allow:[ Ast_rules.Nondet_random ] ());
  check rules "test_allow is inert outside test/"
    [ Ast_rules.Nondet_random ]
    (under "lib/core/fixture.ml" ~test_allow:[ Ast_rules.Nondet_random ] ())

(* Every true positive the lexical scanner reports on parseable code,
   the AST engine also reports — same line, same rule. (The converse
   is false by design; that gap is what the new families measure.) *)
let test_superset_of_lexical () =
  let fixture =
    String.concat "\n"
      [
        "let f view = view.View.ids";
        "let g a b x y = if a.View.graph = b.View.graph then x else y";
        "let h view = Hashtbl.hash view.View.labels";
        "let i () = Random.self_init ()";
        "let j () = Memo.create ~hash:Hashtbl.hash ~equal:Memo.equal_node_ids ()";
      ]
  in
  let ast =
    List.map (fun f -> (f.Ast_lint.a_line, f.Ast_lint.a_rule)) (scan fixture)
  in
  let lex = lexical fixture in
  check Alcotest.bool "lexical scanner finds the seeded positives" true
    (List.length lex >= 5);
  List.iter
    (fun (f : Lint.finding) ->
      let want = (f.f_line, Ast_rules.of_lexical f.f_rule) in
      if not (List.mem want ast) then
        Alcotest.failf "lexical finding not reproduced: line %d [%s]" f.f_line
          (Lint.rule_name f.f_rule))
    lex

let test_lexical_fallback () =
  let broken =
    String.concat "\n"
      [ "let a view = view.View.ids"; "let oops = ) mismatched" ]
  in
  let fs = scan broken in
  check Alcotest.int "fallback still reports" 1 (List.length fs);
  let f = List.hd fs in
  check rule "the ids rule survives" Ast_rules.Naked_ids_access
    f.Ast_lint.a_rule;
  check Alcotest.bool "tagged as lexical" true
    (f.Ast_lint.a_engine = Ast_lint.Lexical);
  (* The same text minus the syntax error analyses natively. *)
  let fs = scan "let a view = view.View.ids" in
  check Alcotest.bool "AST engine on parseable text" true
    ((List.hd fs).Ast_lint.a_engine = Ast_lint.Ast)

let test_finding_json_shape () =
  let module Json = Locald_runtime.Telemetry.Json in
  let str k j =
    match Json.member k j with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "missing string field %S" k
  in
  let j =
    Ast_lint.finding_json (List.hd (scan "let roll () = Random.int 6"))
  in
  check Alcotest.string "rule field" "nondet-random" (str "rule" j);
  check Alcotest.string "engine field" "ast" (str "engine" j);
  check Alcotest.string "severity field" "error" (str "severity" j);
  (* A lifted lexical finding shares the shape, tagged lexical. *)
  let lifted =
    Ast_lint.of_lexical (List.hd (lexical "let x = Random.self_init ()"))
  in
  check Alcotest.string "lifted rule" "self-init"
    (str "rule" (Ast_lint.finding_json lifted));
  check Alcotest.string "lifted engine" "lexical"
    (str "engine" (Ast_lint.finding_json lifted))

let test_baseline_roundtrip () =
  let findings =
    scan
      (String.concat "\n"
         [ "let a v = v.View.ids"; "let roll () = Random.int 6" ])
  in
  check Alcotest.int "two findings to baseline" 2 (List.length findings);
  let path = Filename.temp_file "analyze-baseline" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ast_lint.Baseline.write path findings;
      let entries = Ast_lint.Baseline.load path in
      check Alcotest.int "all entries load back" 2 (List.length entries);
      check Alcotest.int "baseline absorbs its findings" 0
        (List.length (Ast_lint.Baseline.subtract entries findings));
      let fresh = scan "let t0 () = Unix.gettimeofday ()" in
      check Alcotest.int "a new finding passes through" 1
        (List.length (Ast_lint.Baseline.subtract entries fresh)))

(* ------------------------------------------------------------------ *)
(* Scope resolution units                                              *)
(* ------------------------------------------------------------------ *)

let test_scope () =
  let open Ast_scope in
  check (Alcotest.list Alcotest.string) "Stdlib prefix drops"
    [ "Hashtbl"; "hash" ]
    (canonical [ "Stdlib"; "Hashtbl"; "hash" ]);
  check (Alcotest.list Alcotest.string) "library wrapper drops"
    [ "Memo"; "create" ]
    (canonical [ "Locald_runtime"; "Memo"; "create" ]);
  let qualified = Longident.Ldot (Longident.Lident "Hashtbl", "hash") in
  check Alcotest.bool "qualified path matches" true
    (matches initial qualified [ "Hashtbl"; "hash" ]);
  check Alcotest.bool "bare name needs an open" false
    (matches initial (Longident.Lident "hash") [ "Hashtbl"; "hash" ]);
  let opened = open_module initial [ "Hashtbl" ] in
  check Alcotest.bool "open supplies the prefix" true
    (matches opened (Longident.Lident "hash") [ "Hashtbl"; "hash" ]);
  check Alcotest.bool "value binding shadows" false
    (matches (bind_value opened "hash") (Longident.Lident "hash")
       [ "Hashtbl"; "hash" ]);
  let aliased =
    bind_module initial ~name:"R" ~alias:(Some [ "Random" ])
  in
  check Alcotest.bool "alias expands" true
    (matches aliased
       (Longident.Ldot (Longident.Lident "R", "int"))
       [ "Random"; "int" ]);
  let shadowed = bind_module initial ~name:"Random" ~alias:None in
  check Alcotest.bool "local module shadows" false
    (matches shadowed
       (Longident.Ldot (Longident.Lident "Random", "int"))
       [ "Random"; "int" ])

(* ------------------------------------------------------------------ *)
(* The repo gate                                                       *)
(* ------------------------------------------------------------------ *)

let test_analyze_lib_self_scan () =
  (* Mirror of the lexical self-scan: the AST engine must also find
     lib/ clean. Skip silently if the layout changes (CI runs the real
     [locald analyze] gate from the repo root regardless). *)
  let candidates = [ Filename.concat ".." "lib"; "lib" ] in
  match
    List.find_opt (fun r -> Sys.file_exists r && Sys.is_directory r) candidates
  with
  | None -> ()
  | Some root ->
      let fs = Ast_lint.scan_tree [ root ] in
      List.iter
        (fun f ->
          Printf.printf "unexpected finding: %s\n"
            (Format.asprintf "%a" Ast_lint.pp_finding f))
        fs;
      check Alcotest.int "lib is analyze-clean" 0 (List.length fs)

let () =
  Alcotest.run "ast-lint"
    [
      ( "ported",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "naked-ids-access" `Quick test_naked_ids;
          Alcotest.test_case "self-init" `Quick test_self_init;
          Alcotest.test_case "decorated-key" `Quick test_decorated_key;
          Alcotest.test_case "decorated-key through local open" `Quick
            test_decorated_key_through_open;
        ] );
      ( "families",
        [
          Alcotest.test_case "domain-race" `Quick test_domain_race;
          Alcotest.test_case "nondet-random" `Quick test_nondet_random;
          Alcotest.test_case "nondet-clock" `Quick test_nondet_clock;
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "checkpoint-guard" `Quick test_checkpoint_guard;
        ] );
      ( "engine",
        [
          Alcotest.test_case "allow marker" `Quick test_allow_marker;
          Alcotest.test_case "severities and rule names" `Quick
            test_severities;
          Alcotest.test_case "test_allow knob" `Quick test_test_allow_knob;
          Alcotest.test_case "superset of lexical positives" `Quick
            test_superset_of_lexical;
          Alcotest.test_case "lexical fallback on parse failure" `Quick
            test_lexical_fallback;
          Alcotest.test_case "finding JSON shape" `Quick
            test_finding_json_shape;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_roundtrip;
        ] );
      ( "scope",
        [ Alcotest.test_case "resolution" `Quick test_scope ] );
      ( "gate",
        [
          Alcotest.test_case "lib analyze-clean" `Slow
            test_analyze_lib_self_scan;
        ] );
    ]
