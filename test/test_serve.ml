(* The decision service: wire protocol round-trips, incremental frame
   decoding and its two-tier failure taxonomy, the JSON parser's depth
   bound, capacity-bounded memo eviction, environment validation, and
   end-to-end daemon behaviour — concurrent clients with distinct
   per-request configs answered byte-identically to one-shot runs,
   cross-request memo hits, busy backpressure, malformed-frame
   survival and graceful drain. *)

open Locald_runtime
open Locald_core
module Backend = Locald_local.Backend
module Json = Telemetry.Json

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

let request_gen =
  let open QCheck.Gen in
  let op = oneofl [ Proto.Decide; Proto.Certify; Proto.Metrics; Proto.Ping ] in
  let small_string = string_size ~gen:printable (int_range 0 12) in
  let config =
    map
      (fun (backend, seed, fifo, memo, jobs) ->
        {
          Proto.c_backend = backend;
          c_sched_seed = seed;
          c_fifo = fifo;
          c_memo = memo;
          c_jobs = jobs;
        })
      (tup5
         (opt (oneofl [ "sync"; "async" ]))
         (opt (int_range 0 1000))
         (opt bool)
         (opt (oneofl [ "off"; "exact"; "order" ]))
         (opt (int_range 1 8)))
  in
  map
    (fun (id, op, workload, lo, hi, config) ->
      { Proto.r_id = id; r_op = op; r_workload = workload; r_lo = lo;
        r_hi = hi; r_config = config })
    (tup6 (int_range 0 10000) op (opt small_string) (opt (int_range 0 99999))
       (opt (int_range 0 99999))
       config)

let request_roundtrips =
  QCheck.Test.make ~name:"proto: request round-trips through JSON" ~count:500
    (QCheck.make request_gen) (fun req ->
      match Proto.request_of_json (Proto.request_to_json req) with
      | Ok req' -> req' = req
      | Error msg -> QCheck.Test.fail_reportf "rejected own encoding: %s" msg)

let test_request_rejects_ill_typed () =
  let reject json msg =
    match Proto.request_of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" msg
  in
  reject (Json.Obj [ ("op", Json.String "decide") ]) "a request without an id";
  reject
    (Json.Obj [ ("id", Json.String "7"); ("op", Json.String "decide") ])
    "a string where the id belongs";
  reject
    (Json.Obj [ ("id", Json.Int 1); ("op", Json.String "decode") ])
    "an unknown op";
  reject
    (Json.Obj
       [ ("id", Json.Int 1); ("op", Json.String "decide");
         ("jobs", Json.String "4") ])
    "a string where the job count belongs";
  (* Unknown fields are tolerated: old daemons must survive newer
     clients. *)
  match
    Proto.request_of_json
      (Json.Obj
         [ ("id", Json.Int 1); ("op", Json.String "ping");
           ("novel_field", Json.Bool true) ])
  with
  | Ok req -> check int "id" 1 req.Proto.r_id
  | Error msg -> Alcotest.failf "rejected unknown field: %s" msg

(* ------------------------------------------------------------------ *)
(* Incremental decoding                                                *)
(* ------------------------------------------------------------------ *)

let test_decoder_byte_by_byte () =
  let msgs =
    [ Json.Obj [ ("id", Json.Int 1) ]; Json.String "x"; Json.Int 42 ]
  in
  let wire = Bytes.concat Bytes.empty (List.map Proto.encode_frame msgs) in
  let d = Proto.decoder () in
  let out = ref [] in
  Bytes.iteri
    (fun i _ ->
      Proto.feed d wire i 1;
      let rec drain () =
        match Proto.next d with
        | Some (Proto.Frame j) ->
            out := j :: !out;
            drain ()
        | Some _ -> Alcotest.fail "spurious decode failure"
        | None -> ()
      in
      drain ())
    wire;
  check int "all frames decoded" (List.length msgs) (List.length !out);
  List.iter2
    (fun a b -> check string "frame" (Json.to_string a) (Json.to_string b))
    msgs (List.rev !out)

let test_decoder_garbage_keeps_stream () =
  let d = Proto.decoder () in
  let bad = Bytes.of_string "not json" in
  let frame = Bytes.create (4 + Bytes.length bad) in
  Bytes.set_int32_be frame 0 (Int32.of_int (Bytes.length bad));
  Bytes.blit bad 0 frame 4 (Bytes.length bad);
  Proto.feed d frame 0 (Bytes.length frame);
  (match Proto.next d with
  | Some (Proto.Garbage _) -> ()
  | _ -> Alcotest.fail "unparseable payload should be Garbage");
  (* The stream survives: the next well-formed frame decodes. *)
  let good = Proto.encode_frame (Json.Int 7) in
  Proto.feed d good 0 (Bytes.length good);
  match Proto.next d with
  | Some (Proto.Frame (Json.Int 7)) -> ()
  | _ -> Alcotest.fail "stream should survive a garbage payload"

let test_decoder_oversized_is_sticky_corrupt () =
  let d = Proto.decoder ~max_frame:64 () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 1000l;
  Proto.feed d b 0 4;
  (match Proto.next d with
  | Some (Proto.Corrupt _) -> ()
  | _ -> Alcotest.fail "oversized length prefix should be Corrupt");
  (* Sticky: framing is lost for good, later feeds cannot resync. *)
  let good = Proto.encode_frame (Json.Int 7) in
  Proto.feed d good 0 (Bytes.length good);
  match Proto.next d with
  | Some (Proto.Corrupt _) -> ()
  | _ -> Alcotest.fail "Corrupt must be sticky"

(* ------------------------------------------------------------------ *)
(* The JSON depth bound                                                *)
(* ------------------------------------------------------------------ *)

let nested depth = String.make depth '[' ^ "1" ^ String.make depth ']'

let test_json_depth_bound () =
  (* Within the bound: parses. *)
  (match Json.of_string (nested 100) with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "nested list should parse");
  (* A hostile frame nested far past the bound must raise a clean
     parse error, not overflow the stack (the pre-fix behaviour killed
     the whole daemon). *)
  (match Json.of_string (nested (Json.default_max_depth + 10)) with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "hostile nesting should be a Parse_error");
  (* And the bound is adjustable for callers that want it tighter. *)
  match Json.of_string ~max_depth:8 (nested 20) with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "explicit max_depth should bind"

(* ------------------------------------------------------------------ *)
(* Memo capacity eviction                                              *)
(* ------------------------------------------------------------------ *)

let test_memo_capacity_bounds_size () =
  (* Plain int keys, not decorated balls — the raw key functions are
     fine here. *)
  let m =
    (* int keys: *) Memo.create ~shards:1 ~capacity:8 (* locald-lint: allow *)
      ~hash:Hashtbl.hash ~equal:Int.equal ()
  in
  for k = 0 to 99 do
    check int "computes through" (k * k)
      (Memo.find_or_compute m k (fun () -> k * k))
  done;
  if Memo.size m > 8 then
    Alcotest.failf "size %d exceeds capacity 8" (Memo.size m);
  if Memo.evictions m <= 0 then Alcotest.fail "expected evictions";
  (* Transparency: evicted keys recompute to the same values. *)
  for k = 0 to 99 do
    check int "recomputes transparently" (k * k)
      (Memo.find_or_compute m k (fun () -> k * k))
  done;
  if Memo.size m > 8 then
    Alcotest.failf "size %d exceeds capacity 8 after reuse" (Memo.size m)

let test_memo_unbounded_without_capacity () =
  let m =
    (* int keys: *) Memo.create ~shards:1 (* locald-lint: allow *)
      ~hash:Hashtbl.hash ~equal:Int.equal ()
  in
  for k = 0 to 99 do
    ignore (Memo.find_or_compute m k (fun () -> k))
  done;
  check int "all keys live" 100 (Memo.size m);
  check int "no evictions" 0 (Memo.evictions m)

(* ------------------------------------------------------------------ *)
(* Environment validation                                               *)
(* ------------------------------------------------------------------ *)

(* The empty string counts as unset, so putenv "" restores the
   pristine state without needing unsetenv. *)
let with_env var value f =
  let old = Option.value (Sys.getenv_opt var) ~default:"" in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var old) f

let test_env_problems_reject_typos () =
  with_env "LOCALD_BACKEND" "asink" (fun () ->
      match Backend.env_problems () with
      | [] -> Alcotest.fail "typo'd LOCALD_BACKEND should be a problem"
      | _ -> ());
  with_env "LOCALD_SCHED_SEED" "seven" (fun () ->
      match Backend.env_problems () with
      | [] -> Alcotest.fail "non-numeric LOCALD_SCHED_SEED should be a problem"
      | _ -> ());
  with_env "LOCALD_MEMO" "sometimes" (fun () ->
      match Memo.env_problems () with
      | [] -> Alcotest.fail "unknown LOCALD_MEMO should be a problem"
      | _ -> ());
  check bool "clean environment has no problems" true
    (Service.env_problems () = [])

(* ------------------------------------------------------------------ *)
(* The daemon, end to end                                              *)
(* ------------------------------------------------------------------ *)

let socket_counter = ref 0

(* An in-process daemon on a private socket: the server loop runs on a
   posix thread (requests still fan out over the domain pool), the
   test body plays client, and the finaliser drains and joins so every
   test ends with the loop's stats in hand. *)
let with_server ?max_inflight ?max_frame ?throttle_ms ?max_engines f =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "locald-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  let drain = Atomic.make false in
  let svc = Service.create ?max_engines () in
  let listener = Serve.listener_unix path in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some
            (Serve.run ?max_inflight ?max_frame ?throttle_ms ~drain
               ~listeners:[ listener ] ~handlers:(Service.handlers svc) ()))
      ()
  in
  let finish () =
    Atomic.set drain true;
    Thread.join th;
    (try Sys.remove path with Sys_error _ -> ())
  in
  let result = Fun.protect ~finally:finish (fun () -> f path drain) in
  match !stats with
  | Some s -> (result, s)
  | None -> Alcotest.fail "server loop died without returning stats"

let rpc fd req =
  Proto.write_frame fd (Proto.request_to_json req);
  match Proto.read_frame fd with
  | Some json -> json
  | None -> Alcotest.fail "connection closed without a response"

let result_digest json =
  let v = Proto.response_view json in
  if not v.Proto.v_ok then
    Alcotest.failf "expected ok response, got %s" (Json.to_string json);
  match v.Proto.v_result with
  | Some (Json.Obj kvs) -> (
      match List.assoc_opt "digest" kvs with
      | Some (Json.String d) -> d
      | _ -> Alcotest.fail "response carries no digest")
  | _ -> Alcotest.fail "response carries no result object"

let metrics_counter fd name =
  let json = rpc fd (Proto.request ~id:999 Proto.Metrics) in
  let v = Proto.response_view json in
  match v.Proto.v_result with
  | Some result -> (
      match
        Option.bind
          (match result with
          | Json.Obj kvs -> List.assoc_opt "counters" kvs
          | _ -> None)
          (function
            | Json.Obj kvs -> List.assoc_opt name kvs
            | _ -> None)
      with
      | Some (Json.Int n) -> n
      | _ -> Alcotest.failf "no %S counter in metrics" name)
  | None -> Alcotest.fail "metrics response carries no result"

let oneshot_digest ?backend name =
  let w = Option.get (Sweeps.find name) in
  Sweeps.digest (w.Sweeps.w_unsharded ?backend ())

let test_decide_matches_oneshot_and_memoises () =
  let (d1, d2, hits1, hits2), _stats =
    with_server (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let req = Proto.request ~workload:"exhaustive-decider" ~id:5
                Proto.Decide in
            let r1 = rpc fd req in
            let hits1 = metrics_counter fd "memo.hits" in
            let r2 = rpc fd req in
            let hits2 = metrics_counter fd "memo.hits" in
            (* The repeated request is byte-identical, not merely
               digest-equal: responses carry no timestamps. *)
            check string "responses byte-identical" (Json.to_string r1)
              (Json.to_string r2);
            (result_digest r1, result_digest r2, hits1, hits2)))
  in
  check string "daemon digest = one-shot digest"
    (oneshot_digest "exhaustive-decider") d1;
  check string "repeat digest" d1 d2;
  (* The warm engine answers the second request from its memo table. *)
  if hits2 <= hits1 then
    Alcotest.failf "no cross-request memo hits (%d -> %d)" hits1 hits2

let test_concurrent_clients_distinct_configs () =
  let async_backend seed =
    Backend.Async { Locald_local.Async_runner.sched_seed = seed; fifo = false }
  in
  let (sync_ds, async_ds), stats =
    with_server (fun path _drain ->
        let a = Proto.connect_unix path in
        let b = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            let sync_req id =
              Proto.request ~workload:"exhaustive-decider" ~id Proto.Decide
            in
            let async_req id =
              Proto.request ~workload:"exhaustive-decider"
                ~config:
                  {
                    Proto.no_config with
                    Proto.c_backend = Some "async";
                    c_sched_seed = Some 3;
                  }
                ~id Proto.Decide
            in
            (* Interleave: client a speaks sync, client b async-seed-3,
               strictly alternating on the same workload — the server
               must thread each request's config without leaking either
               into the other (or into the process globals). *)
            let sync_ds = ref [] and async_ds = ref [] in
            for i = 1 to 3 do
              sync_ds := result_digest (rpc a (sync_req i)) :: !sync_ds;
              async_ds := result_digest (rpc b (async_req (100 + i))) :: !async_ds
            done;
            (!sync_ds, !async_ds)))
  in
  let sync_expect = oneshot_digest "exhaustive-decider" in
  let async_expect =
    oneshot_digest ~backend:(async_backend 3) "exhaustive-decider"
  in
  List.iter (fun d -> check string "sync client" sync_expect d) sync_ds;
  List.iter (fun d -> check string "async client" async_expect d) async_ds;
  check int "all requests served" 6 stats.Serve.served;
  check int "two connections" 2 stats.Serve.connections;
  (* The globals were never touched. *)
  check bool "default backend untouched" true (Backend.default () = Backend.Sync)

let test_per_request_config_rejected_not_coerced () =
  let (), _stats =
    with_server (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let expect_error req msg =
              let v = Proto.response_view (rpc fd req) in
              if v.Proto.v_ok then Alcotest.failf "accepted %s" msg;
              if v.Proto.v_error = None then
                Alcotest.failf "no error text for %s" msg
            in
            expect_error
              (Proto.request
                 ~config:{ Proto.no_config with Proto.c_backend = Some "asink" }
                 ~id:1 Proto.Decide)
              "an unknown backend name";
            expect_error
              (Proto.request
                 ~config:{ Proto.no_config with Proto.c_memo = Some "maybe" }
                 ~id:2 Proto.Decide)
              "an unknown memo mode";
            expect_error
              (Proto.request ~workload:"no-such-sweep" ~id:3 Proto.Decide)
              "an unknown workload";
            expect_error
              (Proto.request ~workload:"exhaustive-decider" ~lo:0 ~hi:999999999
                 ~id:4 Proto.Decide)
              "an out-of-range hi";
            expect_error
              (Proto.request
                 ~config:
                   {
                     Proto.no_config with
                     Proto.c_backend = Some "sync";
                     c_sched_seed = Some 3;
                   }
                 ~id:5 Proto.Decide)
              "a sync backend with an async seed"))
  in
  ()

let test_busy_backpressure () =
  let replies, stats =
    with_server ~max_inflight:1 (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            (* Four pings in one write: the read sweep decodes all four
               before anything executes, so with max_inflight = 1 the
               first occupies the queue and the rest bounce busy —
               deterministically, no timing involved. *)
            let frames =
              List.map
                (fun id ->
                  Proto.encode_frame
                    (Proto.request_to_json (Proto.request ~id Proto.Ping)))
                [ 1; 2; 3; 4 ]
            in
            let wire = Bytes.concat Bytes.empty frames in
            let n = Unix.write fd wire 0 (Bytes.length wire) in
            check int "single write" (Bytes.length wire) n;
            List.init 4 (fun _ ->
                match Proto.read_frame fd with
                | Some json -> Proto.response_view json
                | None -> Alcotest.fail "connection closed early")))
  in
  let busy, ok = List.partition (fun v -> v.Proto.v_busy) replies in
  check int "three bounced busy" 3 (List.length busy);
  check int "one served" 1 (List.length ok);
  check bool "served reply is the first id" true
    (List.for_all (fun v -> v.Proto.v_id = Some 1) ok);
  check int "stats.busy" 3 stats.Serve.busy;
  check int "stats.served" 1 stats.Serve.served

let test_malformed_frame_survival () =
  let (), stats =
    with_server (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            (* A well-framed unparseable payload: error reply, and the
               connection keeps working. *)
            let bad = "{{{{" in
            let frame = Bytes.create (4 + String.length bad) in
            Bytes.set_int32_be frame 0 (Int32.of_int (String.length bad));
            Bytes.blit_string bad 0 frame 4 (String.length bad);
            ignore (Unix.write fd frame 0 (Bytes.length frame));
            (match Proto.read_frame fd with
            | Some json ->
                let v = Proto.response_view json in
                check bool "error reply" false v.Proto.v_ok
            | None -> Alcotest.fail "daemon dropped the connection");
            (* The daemon did not die and the stream still works. *)
            let v = Proto.response_view (rpc fd (Proto.request ~id:9 Proto.Ping)) in
            check bool "follow-up ok" true v.Proto.v_ok))
  in
  check int "one malformed frame counted" 1 stats.Serve.malformed

let test_corrupt_framing_closes_connection () =
  let (), stats =
    with_server ~max_frame:1024 (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let b = Bytes.create 4 in
            Bytes.set_int32_be b 0 100000l;
            ignore (Unix.write fd b 0 4);
            (match Proto.read_frame fd with
            | Some json ->
                let v = Proto.response_view json in
                check bool "error reply" false v.Proto.v_ok
            | None -> Alcotest.fail "expected an error reply before close");
            (* Framing is lost: the daemon closes this connection. *)
            match Proto.read_frame fd with
            | None -> ()
            | Some _ -> Alcotest.fail "corrupt connection should close"))
  in
  check int "one corrupt frame counted" 1 stats.Serve.malformed

let test_drain_delivers_inflight () =
  let views, stats =
    with_server (fun path drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            (* Make sure the connection is accepted before the drain
               flips — a connection still in the listen backlog when
               the listeners close is (correctly) lost, and that is
               not what this test is about. *)
            let v = Proto.response_view (rpc fd (Proto.request ~id:0 Proto.Ping)) in
            check bool "warm-up ping" true v.Proto.v_ok;
            (* Two requests are on the wire when the drain flag flips —
               the graceful-shutdown contract says both answers still
               arrive, then EOF. This is what the PR-6 signal handlers
               (flush and re-deliver) got wrong: they killed the
               process with these responses unsent. *)
            let frames =
              List.map
                (fun id ->
                  Proto.encode_frame
                    (Proto.request_to_json (Proto.request ~id Proto.Ping)))
                [ 1; 2 ]
            in
            let wire = Bytes.concat Bytes.empty frames in
            ignore (Unix.write fd wire 0 (Bytes.length wire));
            Atomic.set drain true;
            let r1 = Proto.read_frame fd in
            let r2 = Proto.read_frame fd in
            let eof = Proto.read_frame fd in
            check bool "EOF after the drain" true (eof = None);
            List.filter_map (Option.map Proto.response_view) [ r1; r2 ]))
  in
  check int "both in-flight responses delivered" 2 (List.length views);
  List.iter (fun v -> check bool "ok" true v.Proto.v_ok) views;
  check int "ping plus both served" 3 stats.Serve.served

let test_shutdown_request_drains () =
  let (), stats =
    with_server (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let json = rpc fd (Proto.request ~id:1 Proto.Shutdown) in
            let v = Proto.response_view json in
            check bool "shutdown acknowledged" true v.Proto.v_ok;
            (* The daemon answers, drains and closes — without the test
               touching the drain flag. *)
            match Proto.read_frame fd with
            | None -> ()
            | Some _ -> Alcotest.fail "expected EOF after shutdown"))
  in
  check int "shutdown served" 1 stats.Serve.served

let test_engine_cache_evicts_lru () =
  let (builds, evictions), _stats =
    with_server ~max_engines:2 (fun path _drain ->
        let fd = Proto.connect_unix path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let builds0 = metrics_counter fd "serve.engine_builds" in
            let evict0 = metrics_counter fd "serve.engine_evictions" in
            let decide seed =
              let config =
                match seed with
                | None -> Proto.no_config
                | Some s ->
                    {
                      Proto.no_config with
                      Proto.c_backend = Some "async";
                      c_sched_seed = Some s;
                    }
              in
              ignore
                (result_digest
                   (rpc fd
                      (Proto.request ~workload:"exhaustive-decider" ~config
                         ~id:1 Proto.Decide)))
            in
            (* Three distinct configs through a 2-engine cache, then
               the first again: four builds, at least one eviction. *)
            decide None;
            decide (Some 1);
            decide (Some 2);
            decide None;
            ( metrics_counter fd "serve.engine_builds" - builds0,
              metrics_counter fd "serve.engine_evictions" - evict0 )))
  in
  check int "four engine builds" 4 builds;
  check bool "evictions happened" true (evictions >= 1)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          QCheck_alcotest.to_alcotest request_roundtrips;
          Alcotest.test_case "ill-typed requests rejected" `Quick
            test_request_rejects_ill_typed;
          Alcotest.test_case "decoder survives byte-by-byte feeds" `Quick
            test_decoder_byte_by_byte;
          Alcotest.test_case "garbage payload keeps the stream" `Quick
            test_decoder_garbage_keeps_stream;
          Alcotest.test_case "oversized frame is sticky corrupt" `Quick
            test_decoder_oversized_is_sticky_corrupt;
          Alcotest.test_case "JSON nesting depth is bounded" `Quick
            test_json_depth_bound;
        ] );
      ( "memo",
        [
          Alcotest.test_case "capacity bounds live entries" `Quick
            test_memo_capacity_bounds_size;
          Alcotest.test_case "unbounded without capacity" `Quick
            test_memo_unbounded_without_capacity;
        ] );
      ( "env",
        [
          Alcotest.test_case "typo'd variables are problems" `Quick
            test_env_problems_reject_typos;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "decide matches one-shot, memoises" `Slow
            test_decide_matches_oneshot_and_memoises;
          Alcotest.test_case "concurrent clients, distinct configs" `Slow
            test_concurrent_clients_distinct_configs;
          Alcotest.test_case "bad per-request config rejected" `Quick
            test_per_request_config_rejected_not_coerced;
          Alcotest.test_case "inflight bound bounces busy" `Quick
            test_busy_backpressure;
          Alcotest.test_case "malformed frame survival" `Quick
            test_malformed_frame_survival;
          Alcotest.test_case "corrupt framing closes connection" `Quick
            test_corrupt_framing_closes_connection;
          Alcotest.test_case "drain delivers in-flight responses" `Quick
            test_drain_delivers_inflight;
          Alcotest.test_case "shutdown request drains" `Quick
            test_shutdown_request_drains;
          Alcotest.test_case "engine cache evicts LRU" `Slow
            test_engine_cache_evicts_lru;
        ] );
    ]
