(* The CSR graph arena and the fused ball extractor built on it.

   The arena is a pure re-representation: Graph -> Arena -> Graph must
   be the identity, and the arena-backed [View.extract] must be
   representation-identical — [View.equal_repr], not just isomorphic —
   to the historical [Graph.ball] + [Labelled.induced] pipeline, over
   random graphs, radii, centres and id assignments, at any job count
   and under both engine backends. The per-worker BFS scratch must be
   allocated once and reused for every further extraction. *)

open Locald_graph
open Locald_local
open Locald_runtime

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Reference extractor: the historical pipeline                        *)
(* ------------------------------------------------------------------ *)

let reference_extract ?ids lg ~center ~radius =
  let members = Graph.ball (Labelled.graph lg) center radius in
  let sub, back = Labelled.induced lg members in
  let rank v =
    let r = ref (-1) in
    Array.iteri (fun i u -> if u = v then r := i) back;
    !r
  in
  let rids = Option.map (fun ids -> Array.map (fun u -> ids.(u)) back) ids in
  (View.of_parts ?ids:rids ~center:(rank center) ~radius sub, back)

let random_instance gseed =
  let rng = Random.State.make [| gseed |] in
  let n = 1 + Random.State.int rng 30 in
  let g = Gen.random_connected rng ~n ~p:0.25 in
  let lg = Labelled.init g (fun v -> (v * 13) mod 5) in
  (rng, n, lg)

(* ------------------------------------------------------------------ *)
(* Arena round trip                                                    *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"Graph -> Arena -> Graph is the identity" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun gseed ->
      let _, n, lg = random_instance gseed in
      let g = Labelled.graph lg in
      let a = Arena.of_graph g in
      Arena.order a = n
      && Arena.size a = Graph.size g
      && Graph.equal g (Arena.to_graph a))

let prop_slices_match_neighbours =
  QCheck2.Test.make
    ~name:"arena slices and neighbours_iter agree with Graph.neighbours"
    ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun gseed ->
      let _, n, lg = random_instance gseed in
      let g = Labelled.graph lg in
      let a = Arena.of_graph g in
      let ok = ref true in
      for v = 0 to n - 1 do
        let nbrs = Graph.neighbours g v in
        if Arena.degree a v <> Array.length nbrs then ok := false;
        let adj, off, len = Arena.slice a v in
        if len <> Array.length nbrs then ok := false
        else
          Array.iteri (fun i u -> if adj.(off + i) <> u then ok := false) nbrs;
        let seen = ref [] in
        Arena.neighbours_iter a v (fun u -> seen := u :: !seen);
        if List.rev !seen <> Array.to_list nbrs then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Extraction equivalence                                              *)
(* ------------------------------------------------------------------ *)

(* Representation identity, not isomorphism: digests of downstream
   results marshal the view's concrete arrays, so the arena extractor
   must reproduce the historical numbering byte-for-byte. *)
let prop_extract_matches_reference =
  QCheck2.Test.make
    ~name:"arena-backed View.extract is equal_repr to ball+induced" ~count:200
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (gseed, radius) ->
      let rng, n, lg = random_instance gseed in
      let ids = Ids.to_array (Ids.shuffled rng n) in
      let ok = ref true in
      for center = 0 to n - 1 do
        let got = View.extract ~ids lg ~center ~radius in
        let want, _ = reference_extract ~ids lg ~center ~radius in
        if not (View.equal_repr ( = ) got want) then ok := false;
        let got_free = View.extract lg ~center ~radius in
        let want_free, _ = reference_extract lg ~center ~radius in
        if not (View.equal_repr ( = ) got_free want_free) then ok := false
      done;
      !ok)

(* The same equivalence through the engines: decide outputs over the
   prepared views agree with decides over reference views at jobs 1
   and 4, under the synchronous and the asynchronous backend. *)
let prop_engines_match_reference =
  let describe view =
    ( View.order view,
      Option.map Array.to_list (View.ids view),
      Array.init (View.order view) (View.label view),
      Array.init (View.order view) (fun v ->
          Array.to_list (View.neighbours view v)) )
  in
  let alg = Algorithm.make ~name:"describe" ~radius:2 describe in
  QCheck2.Test.make
    ~name:"prepared views agree across jobs and backends" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun gseed ->
      let rng, n, lg = random_instance gseed in
      let ids = Ids.shuffled rng n in
      let ids_arr = Ids.to_array ids in
      let expected =
        Array.init n (fun center ->
            describe
              (fst (reference_extract ~ids:ids_arr lg ~center ~radius:2)))
      in
      let backends =
        [
          Backend.Sync;
          Backend.Async { Async_runner.sched_seed = 7; fifo = false };
        ]
      in
      let ok =
        List.for_all
          (fun jobs ->
            Pool.set_default_jobs jobs;
            List.for_all
              (fun backend ->
                Backend.with_default backend (fun () ->
                    let prep = Runner.prepare alg lg in
                    Runner.run_prepared prep ~ids = expected))
              backends)
          [ 1; 4 ]
      in
      Pool.set_default_jobs 1;
      ok)

(* ------------------------------------------------------------------ *)
(* Scratch pooling                                                     *)
(* ------------------------------------------------------------------ *)

(* Across whole batches of extractions — and across different id
   assignments, which must not invalidate the scratch — the per-domain
   BFS scratch is allocated at most once (zero times if an earlier
   test already grew it) and reused everywhere else. *)
let test_scratch_reused_across_assignments () =
  Pool.set_default_jobs 1;
  let lg = Labelled.init (Gen.grid 8 8) (fun v -> v mod 3) in
  let alg = Algorithm.make ~name:"order" ~radius:2 View.order in
  let prep0 = Runner.prepare alg lg in
  ignore (Runner.run_prepared prep0 ~ids:(Ids.sequential 64));
  let r0 = Arena.scratch_reuses () and a0 = Arena.scratch_allocs () in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 3 do
    let prep = Runner.prepare alg lg in
    ignore (Runner.run_prepared prep ~ids:(Ids.shuffled rng 64))
  done;
  let reuses = Arena.scratch_reuses () - r0 in
  let allocs = Arena.scratch_allocs () - a0 in
  check int "no new scratch allocations" 0 allocs;
  (* 3 prepares x 64 extractions, every one a reuse. *)
  check int "every extraction reuses the pooled scratch" 192 reuses

let test_scratch_gauge_reported () =
  Pool.set_default_jobs 1;
  let lg = Labelled.init (Gen.grid 8 8) (fun v -> v mod 3) in
  let alg = Algorithm.make ~name:"order" ~radius:2 View.order in
  Telemetry.new_run ();
  ignore (Runner.prepare alg lg);
  let g = Telemetry.Gauge.get (Telemetry.Gauge.make "view.scratch_reuses") in
  (* The flush may also sweep extractions performed since the previous
     sync point, so the gauge is a lower-bounded check: at least this
     prepare's 64 balls, minus at most one first-touch allocation. *)
  check bool
    (Printf.sprintf "view.scratch_reuses gauge counts this run's reuse (%g)" g)
    true (g >= 63.);
  Telemetry.new_run ()

let () =
  Alcotest.run "arena"
    [
      ( "representation",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_slices_match_neighbours ] );
      ( "extraction",
        List.map QCheck_alcotest.to_alcotest
          [ prop_extract_matches_reference; prop_engines_match_reference ] );
      ( "scratch",
        [
          Alcotest.test_case "reused across assignments" `Quick
            test_scratch_reused_across_assignments;
          Alcotest.test_case "telemetry gauge" `Quick
            test_scratch_gauge_reported;
        ] );
    ]
