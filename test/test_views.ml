(* Tests for labelled graphs and view extraction. *)

open Locald_graph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Labelled graphs                                                     *)
(* ------------------------------------------------------------------ *)

let test_labelled_basics () =
  let lg = Labelled.init (Gen.path 4) (fun v -> 10 * v) in
  check int "label" 20 (Labelled.label lg 2);
  check int "order" 4 (Labelled.order lg);
  let doubled = Labelled.map (fun x -> 2 * x) lg in
  check int "map" 40 (Labelled.label doubled 2);
  let raised =
    try ignore (Labelled.make (Gen.path 3) [| 1 |]); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "length mismatch rejected" true raised

let test_labelled_relabel_nodes () =
  let lg = Labelled.init (Gen.path 3) (fun v -> v) in
  let lh = Labelled.relabel_nodes lg [| 2; 0; 1 |] in
  (* Node v moves to perm v and carries its label. *)
  check int "label follows node" 0 (Labelled.label lh 2);
  check int "label follows node (1 -> 0)" 1 (Labelled.label lh 0);
  check bool "edge image" true (Graph.mem_edge (Labelled.graph lh) 2 0)

let test_labelled_induced () =
  let lg = Labelled.init (Gen.cycle 5) (fun v -> v * v) in
  let sub, back = Labelled.induced lg [| 3; 1; 2 |] in
  check (Alcotest.array int) "back" [| 1; 2; 3 |] back;
  check int "labels restricted" 4 (Labelled.label sub 1);
  check int "order" 3 (Labelled.order sub)

(* ------------------------------------------------------------------ *)
(* View extraction                                                     *)
(* ------------------------------------------------------------------ *)

let test_extract_radius_zero () =
  let lg = Labelled.init (Gen.cycle 5) (fun v -> v) in
  let view = View.extract lg ~center:3 ~radius:0 in
  check int "single node" 1 (View.order view);
  check int "label" 3 (View.center_label view)

let test_extract_ball_content () =
  let lg = Labelled.init (Gen.path 7) (fun v -> v) in
  let view = View.extract lg ~center:3 ~radius:2 in
  check int "five nodes in radius-2 ball" 5 (View.order view);
  (* Labels identify original nodes: 1..5. *)
  let labels = List.sort compare (Array.to_list view.View.labels) in
  check (Alcotest.list int) "ball nodes" [ 1; 2; 3; 4; 5 ] labels;
  check int "centre label" 3 (View.center_label view);
  (* The view graph is the induced path. *)
  check bool "view is a path" true (Graph.is_path_graph view.View.graph)

let test_extract_with_ids () =
  let lg = Labelled.const (Gen.path 3) () in
  let view = View.extract ~ids:[| 30; 10; 20 |] lg ~center:1 ~radius:1 in
  check int "centre id" 10 (View.center_id view);
  let stripped = View.strip_ids view in
  let raised =
    try ignore (View.center_id stripped); false with View.No_ids _ -> true
  in
  check bool "stripped view has no ids" true raised;
  let named =
    (* Through an engine the exception names the offending algorithm:
       a supposedly oblivious decide that sneaks an id read raises as
       soon as the engine hands it a stripped view. *)
    let open Locald_local in
    let alg =
      Algorithm.of_oblivious
        (Algorithm.make_oblivious ~name:"wants-ids" ~radius:1 View.center_id)
    in
    try
      ignore (Runner.run alg lg ~ids:(Ids.sequential 3));
      None
    with View.No_ids msg -> Some msg
  in
  match named with
  | Some msg ->
      check bool "message names the algorithm" true
        (String.length msg >= 9 && String.sub msg 0 9 = "wants-ids")
  | None -> Alcotest.fail "expected View.No_ids from an id-free prepared run"

let test_extract_rejects_duplicate_ids_in_ball () =
  let lg = Labelled.const (Gen.path 3) () in
  let raised =
    try ignore (View.extract ~ids:[| 1; 1; 2 |] lg ~center:0 ~radius:1); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "duplicate ids rejected" true raised

let test_reassign_ids () =
  let lg = Labelled.const (Gen.path 3) () in
  let view = View.extract ~ids:[| 0; 1; 2 |] lg ~center:0 ~radius:2 in
  let view' = View.reassign_ids view [| 7; 8; 9 |] in
  check int "new centre id" 7 (View.center_id view');
  let raised =
    try ignore (View.reassign_ids view [| 7; 7; 9 |]); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "non-injective reassignment rejected" true raised

let test_dist_from_center () =
  let lg = Labelled.const (Gen.cycle 8) () in
  let view = View.extract lg ~center:0 ~radius:3 in
  let d = View.dist_from_center view in
  check int "max distance = radius" 3 (Array.fold_left max 0 d);
  check int "centre at distance 0" 0 d.(view.View.center)

let test_labelled_disjoint_union () =
  let a = Labelled.init (Gen.path 2) (fun v -> v) in
  let b = Labelled.init (Gen.cycle 3) (fun v -> 10 + v) in
  let u = Labelled.disjoint_union a b in
  check int "order" 5 (Labelled.order u);
  check int "left labels kept" 1 (Labelled.label u 1);
  check int "right labels shifted in place" 12 (Labelled.label u 4);
  check bool "no cross edges" false (Graph.mem_edge (Labelled.graph u) 1 2)

let test_view_map_labels () =
  let lg = Labelled.init (Gen.path 3) (fun v -> v) in
  let view = View.extract lg ~center:1 ~radius:1 in
  let doubled = View.map_labels (fun x -> 2 * x) view in
  check int "mapped centre" 2 (View.center_label doubled);
  check int "same order" (View.order view) (View.order doubled)

let test_of_parts_validates () =
  let lg = Labelled.const (Gen.path 5) () in
  let raised =
    try ignore (View.of_parts ~center:0 ~radius:1 lg); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "nodes beyond radius rejected" true raised;
  let ok = View.of_parts ~center:2 ~radius:2 lg in
  check int "valid parts accepted" 5 (View.order ok)

(* ------------------------------------------------------------------ *)
(* qcheck: extraction agrees with a spec                               *)
(* ------------------------------------------------------------------ *)

let arbitrary_case =
  QCheck2.Gen.(
    let* n = int_range 2 20 in
    let* seed = int_bound 1_000_000 in
    let* radius = int_range 0 3 in
    let rng = Random.State.make [| seed |] in
    let g = Gen.random_connected rng ~n ~p:0.2 in
    let center = Random.State.int rng n in
    return (Labelled.init g (fun v -> v), center, radius))

let prop_view_order_is_ball_size =
  QCheck2.Test.make ~name:"view order = |B(v,t)|" ~count:80 arbitrary_case
    (fun (lg, center, radius) ->
      View.order (View.extract lg ~center ~radius)
      = Array.length (Graph.ball (Labelled.graph lg) center radius))

let prop_view_edges_are_induced =
  QCheck2.Test.make ~name:"view edges = induced edges" ~count:80 arbitrary_case
    (fun (lg, center, radius) ->
      let view = View.extract lg ~center ~radius in
      let g = Labelled.graph lg in
      (* Labels recover original indices. *)
      let orig = view.View.labels in
      let ok = ref true in
      for i = 0 to View.order view - 1 do
        for j = i + 1 to View.order view - 1 do
          if
            Graph.mem_edge view.View.graph i j
            <> Graph.mem_edge g orig.(i) orig.(j)
          then ok := false
        done
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_view_order_is_ball_size; prop_view_edges_are_induced ]

let () =
  Alcotest.run "views"
    [
      ( "labelled",
        [
          Alcotest.test_case "basics" `Quick test_labelled_basics;
          Alcotest.test_case "relabel nodes" `Quick test_labelled_relabel_nodes;
          Alcotest.test_case "induced" `Quick test_labelled_induced;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "radius zero" `Quick test_extract_radius_zero;
          Alcotest.test_case "ball content" `Quick test_extract_ball_content;
          Alcotest.test_case "with ids" `Quick test_extract_with_ids;
          Alcotest.test_case "duplicate ids in ball" `Quick
            test_extract_rejects_duplicate_ids_in_ball;
          Alcotest.test_case "reassign ids" `Quick test_reassign_ids;
          Alcotest.test_case "distances from centre" `Quick test_dist_from_center;
          Alcotest.test_case "of_parts validation" `Quick test_of_parts_validates;
          Alcotest.test_case "labelled disjoint union" `Quick
            test_labelled_disjoint_union;
          Alcotest.test_case "view map_labels" `Quick test_view_map_labels;
        ] );
      ("properties", qcheck_cases);
    ]
